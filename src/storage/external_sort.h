#ifndef PBSM_STORAGE_EXTERNAL_SORT_H_
#define PBSM_STORAGE_EXTERNAL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/spool_file.h"

namespace pbsm {

/// External merge sort over fixed-size trivially-copyable records.
///
/// Records are buffered up to `memory_budget_bytes`; when the buffer fills,
/// it is sorted and spilled as a run to a temporary SpoolFile (through the
/// buffer pool, so run I/O is counted like any other operator I/O). Finish()
/// switches to streaming: an in-memory sorted vector when no run was
/// spilled, otherwise a k-way heap merge over all runs.
///
/// Used by the refinement step (sorting candidate OID pairs), the bulk
/// loader (sorting Hilbert keys) and the clustering loader.
template <typename T, typename Less>
class ExternalSorter {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  ExternalSorter(BufferPool* pool, size_t memory_budget_bytes, Less less)
      : pool_(pool), less_(less), heap_(HeapGreater{less}) {
    max_buffered_ = memory_budget_bytes / sizeof(T);
    if (max_buffered_ < 64) max_buffered_ = 64;
  }

  ~ExternalSorter() {
    for (SpoolFile& run : runs_) (void)run.Drop();
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record. Must not be called after Finish().
  Status Add(const T& rec) {
    PBSM_CHECK(!finished_) << "Add after Finish";
    static Counter* const records =
        MetricsRegistry::Global().GetCounter("storage.extsort.records");
    records->Add();
    buffer_.push_back(rec);
    ++num_records_;
    if (buffer_.size() >= max_buffered_) {
      return SpillRun();
    }
    return Status::OK();
  }

  /// Adds a block of records (the batch-sink flush path of the filter
  /// kernels). Bumps the records counter once per block instead of once per
  /// record.
  Status AddBatch(const T* recs, size_t n) {
    PBSM_CHECK(!finished_) << "AddBatch after Finish";
    if (n == 0) return Status::OK();
    static Counter* const records =
        MetricsRegistry::Global().GetCounter("storage.extsort.records");
    records->Add(static_cast<uint64_t>(n));
    num_records_ += n;
    size_t i = 0;
    while (i < n) {
      const size_t room = max_buffered_ - buffer_.size();
      const size_t take = std::min(room, n - i);
      buffer_.insert(buffer_.end(), recs + i, recs + i + take);
      i += take;
      if (buffer_.size() >= max_buffered_) {
        PBSM_RETURN_IF_ERROR(SpillRun());
      }
    }
    return Status::OK();
  }

  /// Seals the input and prepares the sorted stream.
  Status Finish() {
    PBSM_CHECK(!finished_);
    finished_ = true;
    if (runs_.empty()) {
      std::sort(buffer_.begin(), buffer_.end(), less_);
      return Status::OK();
    }
    if (!buffer_.empty()) {
      PBSM_RETURN_IF_ERROR(SpillRun());
    }
    // Each open run pins one buffer page; cap the merge fan-in to half the
    // pool and merge in multiple passes when there are more runs (the
    // classic polyphase-style cascade).
    const size_t max_fanin =
        std::max<size_t>(2, pool_->capacity_pages() / 2);
    while (runs_.size() > max_fanin) {
      PBSM_RETURN_IF_ERROR(MergeRunGroup(max_fanin));
    }
    // Open a reader per run and prime the heap.
    readers_.reserve(runs_.size());
    for (SpoolFile& run : runs_) {
      readers_.push_back(run.NewReader());
    }
    for (size_t i = 0; i < readers_.size(); ++i) {
      T rec;
      PBSM_ASSIGN_OR_RETURN(const bool has, readers_[i].Next(&rec));
      if (has) heap_.push(HeapEntry{rec, i});
    }
    return Status::OK();
  }

  /// Produces the next record in sorted order; false at end of stream.
  Result<bool> Next(T* out) {
    PBSM_CHECK(finished_) << "Next before Finish";
    if (runs_.empty()) {
      if (mem_cursor_ >= buffer_.size()) return false;
      *out = buffer_[mem_cursor_++];
      return true;
    }
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.top();
    heap_.pop();
    *out = top.rec;
    T next;
    PBSM_ASSIGN_OR_RETURN(const bool has, readers_[top.run].Next(&next));
    if (has) heap_.push(HeapEntry{next, top.run});
    return true;
  }

  uint64_t num_records() const { return num_records_; }
  size_t num_runs() const { return runs_.size(); }

 private:
  struct HeapEntry {
    T rec;
    size_t run;
  };
  struct HeapGreater {
    Less less;
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return less(b.rec, a.rec);  // Min-heap on rec.
    }
  };

  /// Merges the first `count` runs into one new run (one cascade step).
  Status MergeRunGroup(size_t count) {
    static Counter* const merge_passes =
        MetricsRegistry::Global().GetCounter("storage.extsort.merge_passes");
    merge_passes->Add();
    std::vector<typename SpoolFile::Reader> readers;
    readers.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      readers.push_back(runs_[i].NewReader());
    }
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap(
        HeapGreater{less_});
    for (size_t i = 0; i < count; ++i) {
      T rec;
      PBSM_ASSIGN_OR_RETURN(const bool has, readers[i].Next(&rec));
      if (has) heap.push(HeapEntry{rec, i});
    }
    PBSM_ASSIGN_OR_RETURN(SpoolFile merged,
                          SpoolFile::Create(pool_, sizeof(T)));
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      PBSM_RETURN_IF_ERROR(merged.Append(&top.rec));
      T rec;
      PBSM_ASSIGN_OR_RETURN(const bool has, readers[top.run].Next(&rec));
      if (has) heap.push(HeapEntry{rec, top.run});
    }
    readers.clear();  // Unpin before dropping the files.
    for (size_t i = 0; i < count; ++i) {
      PBSM_RETURN_IF_ERROR(runs_[i].Drop());
    }
    runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(count));
    runs_.push_back(std::move(merged));
    return Status::OK();
  }

  Status SpillRun() {
    static Counter* const spill_runs =
        MetricsRegistry::Global().GetCounter("storage.extsort.spill_runs");
    spill_runs->Add();
    std::sort(buffer_.begin(), buffer_.end(), less_);
    PBSM_ASSIGN_OR_RETURN(SpoolFile run,
                          SpoolFile::Create(pool_, sizeof(T)));
    for (const T& rec : buffer_) {
      PBSM_RETURN_IF_ERROR(run.Append(&rec));
    }
    runs_.push_back(std::move(run));
    buffer_.clear();
    return Status::OK();
  }

  BufferPool* pool_;
  Less less_;
  size_t max_buffered_ = 0;
  std::vector<T> buffer_;
  std::vector<SpoolFile> runs_;
  std::vector<typename SpoolFile::Reader> readers_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap_;
  uint64_t num_records_ = 0;
  size_t mem_cursor_ = 0;
  bool finished_ = false;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_EXTERNAL_SORT_H_
