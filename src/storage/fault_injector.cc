#include "storage/fault_injector.h"

#include <cstdlib>

#include "common/metrics.h"

namespace pbsm {

namespace {

Status ErrorFor(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return Status::IoError("injected read fault");
    case FaultOp::kWrite:
      return Status::IoError("injected write fault");
    case FaultOp::kAllocate:
      return Status::ResourceExhausted("injected ENOSPC on page allocation");
  }
  return Status::Internal("unknown FaultOp");
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(RuleState{rule, 0, 0});
}

FaultInjector::Decision FaultInjector::Decide(FaultOp op, PageId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  static Counter* const injected =
      MetricsRegistry::Global().GetCounter("io.injected_faults");
  Decision decision;
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.op != op) continue;
    if (r.file != kInvalidFileId && r.file != id.file) continue;
    ++rs.ops_seen;
    if (r.max_faults != 0 && rs.fired >= r.max_faults) continue;  // Recovered.
    bool fire;
    if (r.at_op != 0) {
      fire = rs.ops_seen == r.at_op;
    } else {
      fire = rng_.Bernoulli(r.probability);
    }
    if (!fire) continue;
    ++rs.fired;
    ++injected_;
    injected->Add();
    if (r.kind == FaultKind::kTornWrite) {
      decision.torn = true;
      // A torn write persists a strict prefix: at least one byte, never the
      // whole page. Seeded, so scenarios replay.
      decision.torn_bytes =
          1 + static_cast<size_t>(rng_.Uniform(kPageSize - 1));
    } else {
      decision.status = ErrorFor(op);
    }
    return decision;  // First firing rule wins.
  }
  return decision;
}

uint64_t FaultInjector::injected_faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

Result<std::shared_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& spec) {
  uint64_t seed = 1;
  std::vector<FaultRule> rules;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string term = spec.substr(pos, end - pos);
    pos = end + 1;
    if (term.empty()) continue;

    const size_t eq = term.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault profile term '" + term +
                                     "' is not key=value");
    }
    const std::string key = term.substr(0, eq);
    const std::string value = term.substr(eq + 1);
    if (key == "seed") {
      seed = std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }

    FaultRule rule;
    if (key == "read") {
      rule.op = FaultOp::kRead;
    } else if (key == "write") {
      rule.op = FaultOp::kWrite;
    } else if (key == "alloc") {
      rule.op = FaultOp::kAllocate;
    } else if (key == "torn") {
      rule.op = FaultOp::kWrite;
      rule.kind = FaultKind::kTornWrite;
    } else {
      return Status::InvalidArgument("unknown fault profile key '" + key +
                                     "'");
    }

    // value = <probability>[xN]
    char* rest = nullptr;
    rule.probability = std::strtod(value.c_str(), &rest);
    if (rest == value.c_str() || rule.probability < 0.0 ||
        rule.probability > 1.0) {
      return Status::InvalidArgument("bad fault probability in '" + term +
                                     "'");
    }
    if (*rest == 'x') {
      rule.max_faults = std::strtoull(rest + 1, &rest, 10);
      if (rule.max_faults == 0) {
        return Status::InvalidArgument("bad fault count in '" + term + "'");
      }
    }
    if (*rest != '\0') {
      return Status::InvalidArgument("trailing garbage in '" + term + "'");
    }
    rules.push_back(rule);
  }

  auto injector = std::make_shared<FaultInjector>(seed);
  for (const FaultRule& rule : rules) injector->AddRule(rule);
  return injector;
}

}  // namespace pbsm
