#ifndef PBSM_STORAGE_FAULT_INJECTOR_H_
#define PBSM_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/page.h"

namespace pbsm {

/// Which physical operation a fault rule matches.
enum class FaultOp {
  kRead,      ///< DiskManager::ReadPage.
  kWrite,     ///< DiskManager::WritePage.
  kAllocate,  ///< DiskManager::AllocatePage (ENOSPC-style failures).
};

/// What happens when a rule fires.
enum class FaultKind {
  kError,      ///< The operation fails with a non-OK Status.
  kTornWrite,  ///< The write persists only a prefix of the page but still
               ///< *reports success* — the crash-mid-write case the per-page
               ///< checksums exist to catch on a later read.
};

/// One scripted injection rule. A rule fires when its operation matches,
/// its file filter (if any) matches, and either its deterministic trigger
/// (`at_op`) or its seeded probability says so. `max_faults` makes a rule
/// transient: after firing that many times it disarms ("recovers") and the
/// device behaves normally again.
struct FaultRule {
  FaultOp op = FaultOp::kRead;
  FaultKind kind = FaultKind::kError;

  /// Per-attempt firing probability in [0, 1]. Because every retry re-rolls,
  /// p < 1 models independent transient faults (a retry usually succeeds)
  /// while p == 1 with max_faults == 0 models a permanent device failure.
  double probability = 0.0;

  /// Fires at most this many times, then the rule disarms. 0 = unlimited.
  uint64_t max_faults = 0;

  /// Restrict to one file; kInvalidFileId matches every file.
  FileId file = kInvalidFileId;

  /// When nonzero: fire deterministically on exactly the Nth matching
  /// operation this rule observes (1-based), ignoring `probability`.
  uint64_t at_op = 0;
};

/// Deterministic, seeded fault injector hooked into DiskManager.
///
/// Every physical page operation consults Decide() before touching the file
/// descriptor. All decisions derive from one seeded Rng plus per-rule
/// counters, so a scenario replays identically from its seed — the property
/// the differential fault tests lean on. Thread-safe (one mutex; the disk
/// manager already serialises I/O, so this is never contended on a hot
/// path).
///
/// Counters are mirrored into the global MetricsRegistry as
/// "io.injected_faults" (every fired rule, torn writes included).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void AddRule(const FaultRule& rule);

  /// Parses a scenario profile string into an injector. Format: semicolon-
  /// or comma-separated `key=value` terms
  ///
  ///   seed=42;read=0.01;write=0.005;alloc=1x1;torn=0.002
  ///
  /// where read/write/alloc/torn take a probability, optionally suffixed
  /// `xN` to disarm after N fires (a transient burst), e.g. `read=1x5` =
  /// the next five reads fail, then the device recovers. `alloc` failures
  /// surface as ResourceExhausted (ENOSPC); the others as IoError; `torn`
  /// silently truncates writes (caught later by page checksums).
  static Result<std::shared_ptr<FaultInjector>> Parse(const std::string& spec);

  /// The verdict for one physical operation.
  struct Decision {
    /// Non-OK when an error rule fired; the operation must fail with it.
    Status status;
    /// A torn-write rule fired: persist only `torn_bytes` of the page and
    /// report success.
    bool torn = false;
    size_t torn_bytes = 0;
  };

  /// Consults the rules for one operation. Called by DiskManager with its
  /// own mutex held; also safe standalone.
  Decision Decide(FaultOp op, PageId id);

  /// Total rule firings so far (errors + torn writes).
  uint64_t injected_faults() const;

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t ops_seen = 0;
    uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  Rng rng_;
  std::vector<RuleState> rules_;
  uint64_t injected_ = 0;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_FAULT_INJECTOR_H_
