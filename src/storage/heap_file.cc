#include "storage/heap_file.h"

#include <cstring>

#include "common/metrics.h"

namespace pbsm {

uint16_t HeapFile::GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void HeapFile::PutU16(char* p, uint16_t v) { std::memcpy(p, &v, sizeof(v)); }

Result<HeapFile> HeapFile::Create(BufferPool* pool, const std::string& name) {
  PBSM_ASSIGN_OR_RETURN(const FileId file, pool->disk()->CreateFile(name));
  return HeapFile(pool, file, 0, 0);
}

Result<Oid> HeapFile::Append(const char* data, size_t size) {
  static Counter* const appends =
      MetricsRegistry::Global().GetCounter("storage.heapfile.appends");
  appends->Add();
  if (size > MaxRecordSize()) {
    return Status::InvalidArgument("record of " + std::to_string(size) +
                                   " bytes exceeds page capacity");
  }
  const uint16_t need = static_cast<uint16_t>(size);

  // Try the last page first; records are append-only.
  if (num_pages_ > 0) {
    const uint32_t page_no = num_pages_ - 1;
    PBSM_ASSIGN_OR_RETURN(PageHandle page,
                          pool_->FetchPage(PageId{file_, page_no}));
    char* base = page.mutable_data();
    const uint16_t slots = GetU16(base);
    const uint16_t free_off = GetU16(base + 2);
    const size_t dir_end = kHeaderSize + (slots + 1) * kSlotSize;
    if (free_off >= need && static_cast<size_t>(free_off - need) >= dir_end) {
      const uint16_t new_off = free_off - need;
      std::memcpy(base + new_off, data, size);
      char* slot_ptr = base + kHeaderSize + slots * kSlotSize;
      PutU16(slot_ptr, new_off);
      PutU16(slot_ptr + 2, need);
      PutU16(base, slots + 1);
      PutU16(base + 2, new_off);
      ++num_records_;
      return Oid{page_no, slots};
    }
  }

  // Start a new page.
  PBSM_ASSIGN_OR_RETURN(PageHandle page, pool_->NewPage(file_));
  if (page.id().page_no != num_pages_) {
    // A previous Append allocated a page on disk but failed before this
    // counter advanced (e.g. a transient fault mid-call). Appending into
    // the later page would desynchronise OIDs from physical pages and make
    // every subsequent Fetch read the wrong record — refuse instead.
    return Status::Internal(
        "heap file page desync after failed append: expected page " +
        std::to_string(num_pages_) + ", allocated " +
        std::to_string(page.id().page_no));
  }
  ++num_pages_;
  char* base = page.mutable_data();
  const uint16_t new_off = static_cast<uint16_t>(kPageSize - need);
  std::memcpy(base + new_off, data, size);
  PutU16(base + kHeaderSize, new_off);
  PutU16(base + kHeaderSize + 2, need);
  PutU16(base, 1);
  PutU16(base + 2, new_off);
  ++num_records_;
  return Oid{num_pages_ - 1, 0};
}

Result<bool> HeapFile::Cursor::Next(Oid* oid, std::string* record) {
  while (page_no_ < heap_->num_pages_) {
    if (!page_.valid() || page_.id().page_no != page_no_) {
      PBSM_ASSIGN_OR_RETURN(
          page_, heap_->pool_->FetchPage(PageId{heap_->file_, page_no_}));
    }
    const char* base = page_.data();
    const uint16_t slots = GetU16(base);
    if (slot_ >= slots) {
      ++page_no_;
      slot_ = 0;
      page_ = PageHandle();
      continue;
    }
    const char* slot_ptr = base + kHeaderSize + slot_ * kSlotSize;
    const uint16_t off = GetU16(slot_ptr);
    const uint16_t len = GetU16(slot_ptr + 2);
    record->assign(base + off, len);
    *oid = Oid{page_no_, slot_};
    ++slot_;
    return true;
  }
  return false;
}

Status HeapFile::Fetch(Oid oid, std::string* out) const {
  static Counter* const fetches =
      MetricsRegistry::Global().GetCounter("storage.heapfile.fetches");
  fetches->Add();
  if (oid.page_no >= num_pages_) {
    return Status::OutOfRange("OID page beyond heap file");
  }
  PBSM_ASSIGN_OR_RETURN(PageHandle page,
                        pool_->FetchPage(PageId{file_, oid.page_no}));
  const char* base = page.data();
  const uint16_t slots = GetU16(base);
  if (oid.slot >= slots) {
    return Status::OutOfRange("OID slot beyond page directory");
  }
  const char* slot_ptr = base + kHeaderSize + oid.slot * kSlotSize;
  const uint16_t off = GetU16(slot_ptr);
  const uint16_t len = GetU16(slot_ptr + 2);
  out->assign(base + off, len);
  return Status::OK();
}

}  // namespace pbsm
