#ifndef PBSM_STORAGE_HEAP_FILE_H_
#define PBSM_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace pbsm {

/// Object identifier: the physical address of a record in a heap file.
///
/// OIDs order records by physical placement — sorting OIDs sorts disk
/// accesses, which is exactly what the refinement step exploits.
struct Oid {
  uint32_t page_no = 0;
  uint32_t slot = 0;

  uint64_t Encode() const {
    return (static_cast<uint64_t>(page_no) << 32) | slot;
  }
  static Oid Decode(uint64_t v) {
    return Oid{static_cast<uint32_t>(v >> 32), static_cast<uint32_t>(v)};
  }

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.page_no == b.page_no && a.slot == b.slot;
  }
  friend bool operator<(const Oid& a, const Oid& b) {
    return a.Encode() < b.Encode();
  }
};

/// A slotted-page heap file of variable-length records.
///
/// Page layout: [u16 slot_count][u16 free_offset][slot dir ...][... data].
/// Slot i stores {u16 offset, u16 length}; deleted slots are not supported
/// (the workloads are append-only, as in the paper's bulk-loaded relations).
class HeapFile {
 public:
  /// Creates a new, empty heap file named `name`.
  static Result<HeapFile> Create(BufferPool* pool, const std::string& name);

  /// Wraps an existing file id (e.g. reopened relation).
  HeapFile(BufferPool* pool, FileId file, uint32_t num_pages,
           uint64_t num_records)
      : pool_(pool),
        file_(file),
        num_pages_(num_pages),
        num_records_(num_records) {}

  /// Appends a record; returns its OID. Fails if the record cannot fit on an
  /// empty page.
  Result<Oid> Append(const char* data, size_t size);
  Result<Oid> Append(const std::string& record) {
    return Append(record.data(), record.size());
  }

  /// Reads the record at `oid` into `out` (replacing its contents).
  Status Fetch(Oid oid, std::string* out) const;

  /// Full-file scan: invokes `fn(oid, data, size)` for every record in
  /// physical order. `fn` returns a Status; a non-OK status aborts the scan.
  template <typename Fn>
  Status Scan(Fn fn) const;

  /// Scans only pages [first_page, end_page) — the unit the parallel filter
  /// step uses to range-split a relation across worker threads.
  template <typename Fn>
  Status ScanPages(uint32_t first_page, uint32_t end_page, Fn fn) const;

  /// Pull-style sequential cursor over all records in physical order.
  /// Holds at most one pinned page between calls.
  class Cursor {
   public:
    explicit Cursor(const HeapFile* heap) : heap_(heap) {}

    /// Reads the next record; returns false at end of file.
    Result<bool> Next(Oid* oid, std::string* record);

   private:
    const HeapFile* heap_;
    uint32_t page_no_ = 0;
    uint32_t slot_ = 0;
    PageHandle page_;
  };

  Cursor NewCursor() const { return Cursor(this); }

  FileId file() const { return file_; }
  uint32_t num_pages() const { return num_pages_; }
  uint64_t num_records() const { return num_records_; }
  uint64_t bytes() const {
    return static_cast<uint64_t>(num_pages_) * kPageSize;
  }

  /// Maximum record payload an empty page can hold.
  static constexpr size_t MaxRecordSize() {
    return kPageSize - kHeaderSize - kSlotSize;
  }

 private:
  static constexpr size_t kHeaderSize = 4;  // slot_count + free_offset.
  static constexpr size_t kSlotSize = 4;    // offset + length.

  static uint16_t GetU16(const char* p);
  static void PutU16(char* p, uint16_t v);

  BufferPool* pool_ = nullptr;
  FileId file_ = kInvalidFileId;
  uint32_t num_pages_ = 0;
  uint64_t num_records_ = 0;
};

template <typename Fn>
Status HeapFile::Scan(Fn fn) const {
  return ScanPages(0, num_pages_, fn);
}

template <typename Fn>
Status HeapFile::ScanPages(uint32_t first_page, uint32_t end_page,
                           Fn fn) const {
  if (end_page > num_pages_) end_page = num_pages_;
  for (uint32_t page_no = first_page; page_no < end_page; ++page_no) {
    PBSM_ASSIGN_OR_RETURN(PageHandle page,
                          pool_->FetchPage(PageId{file_, page_no}));
    const char* base = page.data();
    const uint16_t slots = GetU16(base);
    for (uint16_t s = 0; s < slots; ++s) {
      const char* slot_ptr = base + kHeaderSize + s * kSlotSize;
      const uint16_t off = GetU16(slot_ptr);
      const uint16_t len = GetU16(slot_ptr + 2);
      PBSM_RETURN_IF_ERROR(fn(Oid{page_no, s}, base + off, len));
    }
  }
  return Status::OK();
}

}  // namespace pbsm

#endif  // PBSM_STORAGE_HEAP_FILE_H_
