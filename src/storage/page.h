#ifndef PBSM_STORAGE_PAGE_H_
#define PBSM_STORAGE_PAGE_H_

#include <cstdint>
#include <functional>

namespace pbsm {

/// Size of every disk page; matches the 8 KiB pages Paradise/SHORE used.
inline constexpr size_t kPageSize = 8192;

/// Identifies a file managed by the DiskManager.
using FileId = uint32_t;

/// Invalid/unset file sentinel.
inline constexpr FileId kInvalidFileId = 0xffffffffu;

/// Identifies one page: a (file, page-number) pair.
struct PageId {
  FileId file = kInvalidFileId;
  uint32_t page_no = 0;

  bool valid() const { return file != kInvalidFileId; }

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.file == b.file && a.page_no == b.page_no;
  }
  friend bool operator!=(const PageId& a, const PageId& b) {
    return !(a == b);
  }
  friend bool operator<(const PageId& a, const PageId& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.page_no < b.page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(id.file) << 32) |
                                 id.page_no);
  }
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_PAGE_H_
