#include "storage/spool_file.h"

#include "common/logging.h"

namespace pbsm {

Result<SpoolFile> SpoolFile::Create(BufferPool* pool, size_t record_size) {
  PBSM_CHECK(record_size > 0 && record_size <= kPageSize)
      << "spool record size " << record_size;
  PBSM_ASSIGN_OR_RETURN(const FileId file, pool->disk()->CreateTempFile());
  return SpoolFile(pool, file, record_size);
}

Status SpoolFile::Append(const void* record) {
  const uint64_t rpp = records_per_page();
  const uint64_t slot = num_records_ % rpp;
  PageHandle page;
  if (slot == 0) {
    PBSM_ASSIGN_OR_RETURN(page, pool_->NewPage(file_));
    if (page.id().page_no != num_records_ / rpp) {
      // An earlier Append allocated its page but failed before any record
      // landed (transient fault mid-call). The reader derives page numbers
      // from record indices, so silently writing into a later page would
      // make it read the orphaned zero page — fail loudly instead.
      return Status::Internal(
          "spool page desync after failed append: expected page " +
          std::to_string(num_records_ / rpp) + ", allocated " +
          std::to_string(page.id().page_no));
    }
  } else {
    const uint32_t page_no = static_cast<uint32_t>(num_records_ / rpp);
    PBSM_ASSIGN_OR_RETURN(page, pool_->FetchPage(PageId{file_, page_no}));
  }
  std::memcpy(page.mutable_data() + slot * record_size_, record,
              record_size_);
  ++num_records_;
  return Status::OK();
}

Result<bool> SpoolFile::Reader::Next(void* out) {
  if (index_ >= spool_->num_records_) return false;
  const uint64_t rpp = spool_->records_per_page();
  const uint32_t page_no = static_cast<uint32_t>(index_ / rpp);
  const uint64_t slot = index_ % rpp;
  if (!page_.valid() || page_.id().page_no != page_no) {
    PBSM_ASSIGN_OR_RETURN(
        page_, spool_->pool_->FetchPage(PageId{spool_->file_, page_no}));
  }
  std::memcpy(out, page_.data() + slot * spool_->record_size_,
              spool_->record_size_);
  ++index_;
  return true;
}

Status SpoolFile::Drop() {
  if (file_ == kInvalidFileId) return Status::OK();
  const Status s = pool_->DropFile(file_);
  file_ = kInvalidFileId;
  num_records_ = 0;
  return s;
}

}  // namespace pbsm
