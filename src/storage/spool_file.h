#ifndef PBSM_STORAGE_SPOOL_FILE_H_
#define PBSM_STORAGE_SPOOL_FILE_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace pbsm {

/// An append-only temporary file of fixed-size records, accessed through the
/// buffer pool (so spool I/O competes for frames and is counted, exactly like
/// Paradise's partition files living in SHORE).
///
/// The writer deliberately does *not* hold a pinned page between appends —
/// it re-fetches the tail page each time and lets the pool's replacement
/// policy decide when partition pages get flushed. This reproduces the
/// paper's observation that clustered inputs make partition writes cheap
/// (consecutive appends hit the cached tail page) while unclustered inputs
/// scatter them.
class SpoolFile {
 public:
  /// Creates a new spool of `record_size`-byte records in a temp file.
  static Result<SpoolFile> Create(BufferPool* pool, size_t record_size);

  SpoolFile(SpoolFile&&) = default;
  SpoolFile& operator=(SpoolFile&&) = default;
  SpoolFile(const SpoolFile&) = delete;
  SpoolFile& operator=(const SpoolFile&) = delete;

  /// Appends one record (exactly record_size bytes).
  Status Append(const void* record);

  /// Sequential reader over the spool. At most one page pinned at a time.
  class Reader {
   public:
    Reader(const SpoolFile* spool) : spool_(spool) {}

    /// Reads the next record into `out`; returns false at end of spool.
    Result<bool> Next(void* out);

    /// Restarts from the first record.
    void Reset() {
      index_ = 0;
      page_ = PageHandle();
    }

   private:
    const SpoolFile* spool_;
    uint64_t index_ = 0;
    PageHandle page_;
  };

  Reader NewReader() const { return Reader(this); }

  /// Deletes the underlying file; the spool becomes unusable.
  Status Drop();

  uint64_t num_records() const { return num_records_; }
  size_t record_size() const { return record_size_; }
  FileId file() const { return file_; }
  uint64_t num_pages() const {
    const uint64_t rpp = records_per_page();
    return (num_records_ + rpp - 1) / rpp;
  }

 private:
  SpoolFile(BufferPool* pool, FileId file, size_t record_size)
      : pool_(pool), file_(file), record_size_(record_size) {}

  uint64_t records_per_page() const { return kPageSize / record_size_; }

  BufferPool* pool_ = nullptr;
  FileId file_ = kInvalidFileId;
  size_t record_size_ = 0;
  uint64_t num_records_ = 0;
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_SPOOL_FILE_H_
