#include "storage/tuple.h"

#include <cstring>

namespace pbsm {

std::string Tuple::Serialize() const {
  std::string out;
  out.reserve(sizeof(id) + sizeof(feature_class) + 2 + sizeof(uint32_t) +
              name.size() + 4 * sizeof(double) + geometry.SerializedSize());
  out.append(reinterpret_cast<const char*>(&id), sizeof(id));
  out.append(reinterpret_cast<const char*>(&feature_class),
             sizeof(feature_class));
  const uint8_t has_mer = mer.empty() ? 0 : 1;
  out.append(reinterpret_cast<const char*>(&has_mer), sizeof(has_mer));
  if (has_mer != 0) {
    const double coords[4] = {mer.xlo, mer.ylo, mer.xhi, mer.yhi};
    out.append(reinterpret_cast<const char*>(coords), sizeof(coords));
  }
  const uint32_t name_len = static_cast<uint32_t>(name.size());
  out.append(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.append(name);
  geometry.AppendTo(&out);
  return out;
}

Result<Tuple> Tuple::Parse(const char* data, size_t size) {
  Tuple t;
  size_t off = 0;
  const auto read = [&](void* dst, size_t n) {
    if (off + n > size) return false;
    std::memcpy(dst, data + off, n);
    off += n;
    return true;
  };
  uint32_t name_len = 0;
  uint8_t has_mer = 0;
  if (!read(&t.id, sizeof(t.id)) ||
      !read(&t.feature_class, sizeof(t.feature_class)) ||
      !read(&has_mer, sizeof(has_mer))) {
    return Status::Corruption("tuple header truncated");
  }
  if (has_mer != 0) {
    double coords[4];
    if (!read(coords, sizeof(coords))) {
      return Status::Corruption("tuple MER truncated");
    }
    t.mer = Rect(coords[0], coords[1], coords[2], coords[3]);
  }
  if (!read(&name_len, sizeof(name_len))) {
    return Status::Corruption("tuple header truncated");
  }
  if (off + name_len > size) {
    return Status::Corruption("tuple name truncated");
  }
  t.name.assign(data + off, name_len);
  off += name_len;
  size_t consumed = 0;
  PBSM_ASSIGN_OR_RETURN(
      t.geometry,
      Geometry::Parse(reinterpret_cast<const uint8_t*>(data) + off,
                      size - off, &consumed));
  return t;
}

}  // namespace pbsm
