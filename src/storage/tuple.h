#ifndef PBSM_STORAGE_TUPLE_H_
#define PBSM_STORAGE_TUPLE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "geom/geometry.h"
#include "geom/rect.h"

namespace pbsm {

/// A relation tuple: non-spatial attributes plus one spatial attribute.
///
/// Mirrors the paper's TIGER tuples, which carry a name, a feature
/// classification and address-range attributes next to the polyline.
struct Tuple {
  uint64_t id = 0;             ///< Source-assigned identifier.
  uint32_t feature_class = 0;  ///< e.g. road category, landuse code.
  std::string name;            ///< Feature name.
  Geometry geometry;           ///< The spatial join attribute.
  /// Optional precomputed maximal enclosed rectangle (BKSS94 §4.4): a
  /// rectangle guaranteed to lie inside `geometry`'s area. Stored with the
  /// tuple — as the paper proposes — so the containment refinement can
  /// short-circuit without recomputing it. Empty when absent.
  Rect mer;

  /// Serializes to a byte string suitable for HeapFile storage.
  std::string Serialize() const;

  /// Parses a record produced by Serialize().
  static Result<Tuple> Parse(const char* data, size_t size);
};

}  // namespace pbsm

#endif  // PBSM_STORAGE_TUPLE_H_
