#ifndef PBSM_TESTS_JOIN_TEST_HARNESS_H_
#define PBSM_TESTS_JOIN_TEST_HARNESS_H_

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "geom/predicates.h"
#include "storage/tuple.h"

namespace pbsm {

/// Join results keyed by generator-assigned tuple ids, not OIDs: ids are
/// stable across storage layouts and thread counts, so the same dataset
/// yields the same IdPairSet no matter how it was physically loaded. This
/// is what makes the differential comparison meaningful — and lets the
/// fault tests assert bit-identical results after transparent retries.
using IdPairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// O(|r| * |s|) oracle: evaluates the exact predicate on every tuple pair
/// with the naive (quadratic) segment tests, sharing no code with the
/// filter/partition machinery under test beyond the geometry kernels.
inline IdPairSet BruteForceJoin(const std::vector<Tuple>& r,
                                const std::vector<Tuple>& s,
                                SpatialPredicate pred) {
  IdPairSet out;
  for (const Tuple& a : r) {
    const Rect a_mbr = a.geometry.Mbr();
    for (const Tuple& b : s) {
      // The MBR test is a pure optimisation: both predicates imply
      // MBR intersection, so skipping disjoint-MBR pairs drops no results.
      if (!a_mbr.Intersects(b.geometry.Mbr())) continue;
      if (EvaluatePredicate(pred, a.geometry, b.geometry,
                            SegmentTestMode::kNaive)) {
        out.emplace(a.id, b.id);
      }
    }
  }
  return out;
}

/// Window-restricted oracle: the brute-force pairs whose MBRs BOTH
/// intersect `window` — the window semantics of the service and router
/// paths (filtering happens on MBRs, not exact geometry).
inline IdPairSet WindowOracle(const std::vector<Tuple>& r,
                              const std::vector<Tuple>& s,
                              SpatialPredicate pred, const Rect& window) {
  std::map<uint64_t, Rect> r_mbrs, s_mbrs;
  for (const Tuple& t : r) r_mbrs[t.id] = t.geometry.Mbr();
  for (const Tuple& t : s) s_mbrs[t.id] = t.geometry.Mbr();
  IdPairSet out;
  for (const auto& [rid, sid] : BruteForceJoin(r, s, pred)) {
    if (r_mbrs.at(rid).Intersects(window) &&
        s_mbrs.at(sid).Intersects(window)) {
      out.emplace(rid, sid);
    }
  }
  return out;
}

/// Scans `heap` and returns the OID -> tuple-id mapping, so sink pairs
/// (which carry OIDs) can be translated back into id space.
inline Result<std::map<uint64_t, uint64_t>> OidToIdMap(const HeapFile& heap) {
  std::map<uint64_t, uint64_t> map;
  PBSM_RETURN_IF_ERROR(heap.Scan(
      [&map](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        map[oid.Encode()] = tuple.id;
        return Status::OK();
      }));
  return map;
}

/// Runs one SpatialJoin method over already-loaded relations and returns
/// the result pairs in tuple-id space. Propagates any join failure, which
/// is what the fault-injection tests assert on.
///
/// The OID -> id maps may be passed in precomputed; the fault tests do so,
/// built *before* arming the injector, so a scripted failure is attributed
/// to the join under test and not to the harness's own bookkeeping scans.
inline Result<IdPairSet> RunJoinToIdPairs(
    BufferPool* pool, const StoredRelation& r, const StoredRelation& s,
    JoinSpec spec, const std::map<uint64_t, uint64_t>* r_map = nullptr,
    const std::map<uint64_t, uint64_t>* s_map = nullptr) {
  std::map<uint64_t, uint64_t> r_local, s_local;
  if (r_map == nullptr) {
    PBSM_ASSIGN_OR_RETURN(r_local, OidToIdMap(r.heap));
    r_map = &r_local;
  }
  if (s_map == nullptr) {
    PBSM_ASSIGN_OR_RETURN(s_local, OidToIdMap(s.heap));
    s_map = &s_local;
  }
  const auto& r_ids = *r_map;
  const auto& s_ids = *s_map;
  std::vector<std::pair<uint64_t, uint64_t>> raw;
  spec.sink = [&raw](Oid ro, Oid so) {
    raw.emplace_back(ro.Encode(), so.Encode());
  };
  PBSM_RETURN_IF_ERROR(
      SpatialJoin(pool, r.AsInput(), s.AsInput(), spec).status());
  IdPairSet out;
  for (const auto& [ro, so] : raw) {
    out.emplace(r_ids.at(ro), s_ids.at(so));
  }
  return out;
}

/// All six methods the facade dispatches to, for sweep loops.
inline const std::vector<JoinMethod>& AllJoinMethods() {
  static const std::vector<JoinMethod> methods = {
      JoinMethod::kPbsm,       JoinMethod::kParallelPbsm, JoinMethod::kInl,
      JoinMethod::kRtree,      JoinMethod::kSpatialHash,  JoinMethod::kZOrder,
  };
  return methods;
}

}  // namespace pbsm

#endif  // PBSM_TESTS_JOIN_TEST_HARNESS_H_
