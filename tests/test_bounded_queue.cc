#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pbsm {
namespace {

TEST(BoundedQueueTest, FifoWithinOnePriority) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, StrictPriorityAcrossClasses) {
  BoundedQueue<std::string> queue(8, /*num_priorities=*/2);
  EXPECT_TRUE(queue.TryPush("batch-1", 1));
  EXPECT_TRUE(queue.TryPush("interactive-1", 0));
  EXPECT_TRUE(queue.TryPush("batch-2", 1));
  EXPECT_TRUE(queue.TryPush("interactive-2", 0));
  // Every priority-0 item drains before any priority-1 item, FIFO within.
  EXPECT_EQ(queue.Pop(), "interactive-1");
  EXPECT_EQ(queue.Pop(), "interactive-2");
  EXPECT_EQ(queue.Pop(), "batch-1");
  EXPECT_EQ(queue.Pop(), "batch-2");
}

TEST(BoundedQueueTest, TryPushRejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // Full: backpressure, no blocking.
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.TryPush(3));  // Space freed.
}

TEST(BoundedQueueTest, CapacityIsSharedAcrossPriorities) {
  BoundedQueue<int> queue(2, 2);
  EXPECT_TRUE(queue.TryPush(1, 0));
  EXPECT_TRUE(queue.TryPush(2, 1));
  EXPECT_FALSE(queue.TryPush(3, 0));
  EXPECT_FALSE(queue.TryPush(3, 1));
}

TEST(BoundedQueueTest, PopDrainsAfterCloseThenReturnsEmpty) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));  // Closed: no new work.
  EXPECT_EQ(queue.Pop(), 1);       // But queued work still drains.
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // Closed and empty: done.
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&queue, &finished] {
      while (queue.Pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  queue.Close();  // No items: all three must wake and exit.
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(BoundedQueueTest, DrainReturnsEverythingInPriorityOrder) {
  BoundedQueue<int> queue(8, 2);
  EXPECT_TRUE(queue.TryPush(10, 1));
  EXPECT_TRUE(queue.TryPush(1, 0));
  EXPECT_TRUE(queue.TryPush(11, 1));
  queue.Close();
  const std::vector<int> drained = queue.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0], 1);
  EXPECT_EQ(drained[1], 10);
  EXPECT_EQ(drained[2], 11);
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

// Many producers, many consumers, every pushed item consumed exactly once.
// The interesting assertions under TSan are the ones the tool makes.
TEST(BoundedQueueTest, ConcurrentProducersAndConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(16, 2);

  std::mutex seen_mutex;
  std::set<int> seen;
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        // Full queue: spin-retry (the service instead rejects, but the
        // queue itself must stay consistent under retry pressure).
        while (!queue.TryPush(value, value % 2)) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
}

TEST(BoundedQueueTest, PopForReturnsQueuedItemImmediately) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(7));
  const auto item = queue.PopFor(std::chrono::milliseconds(50));
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
}

TEST(BoundedQueueTest, PopForTimesOutEmptyWithoutClosing) {
  BoundedQueue<int> queue(4);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.PopFor(std::chrono::milliseconds(10)).has_value());
  // Must have actually waited (no immediate empty-return on an open queue).
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(5));
  EXPECT_FALSE(queue.closed());
}

TEST(BoundedQueueTest, PopForWakesOnPush) {
  BoundedQueue<int> queue(4);
  std::thread producer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue.TryPush(42));
  });
  // Far longer than the push delay: a wake-on-push (not a timeout) path.
  const auto item = queue.PopFor(std::chrono::seconds(10));
  producer.join();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 42);
}

TEST(BoundedQueueTest, PopForReturnsEmptyOnClosedQueue) {
  BoundedQueue<int> queue(4);
  queue.Close();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.PopFor(std::chrono::seconds(10)).has_value());
  // Closed + empty returns immediately, not after the timeout.
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
}

}  // namespace
}  // namespace pbsm
