#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

// Fills page `page_no` of `file` with a recognisable pattern.
void StampPage(char* data, FileId file, uint32_t page_no) {
  const uint32_t stamp = file * 100003u + page_no;
  for (size_t i = 0; i + sizeof(uint32_t) <= kPageSize;
       i += sizeof(uint32_t)) {
    std::memcpy(data + i, &stamp, sizeof(stamp));
  }
}

bool CheckPage(const char* data, FileId file, uint32_t page_no) {
  const uint32_t stamp = file * 100003u + page_no;
  for (size_t i = 0; i + sizeof(uint32_t) <= kPageSize;
       i += sizeof(uint32_t)) {
    uint32_t got;
    std::memcpy(&got, data + i, sizeof(got));
    if (got != stamp) return false;
  }
  return true;
}

TEST(PageHandleTest, SelfMoveAssignmentIsSafe) {
  StorageEnv env(4 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("self_move"));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
  ASSERT_TRUE(page.valid());
  PageHandle& alias = page;
  page = std::move(alias);  // Self-move must not unpin or invalidate.
  EXPECT_TRUE(page.valid());
  page.Release();
  // The pin is gone exactly once: the file can now be dropped.
  PBSM_EXPECT_OK(env.pool()->DropFile(file));
}

TEST(PageHandleTest, MoveTransfersPinExactlyOnce) {
  StorageEnv env(4 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("mv"));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle a, env.pool()->NewPage(file));
  PageHandle b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it.
  EXPECT_TRUE(b.valid());
  PageHandle c;
  c = std::move(b);
  EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(c.valid());
  c.Release();
  PBSM_EXPECT_OK(env.pool()->DropFile(file));
}

// Concurrent readers over a shared file plus concurrent writers appending
// to private files, through a pool far smaller than the working set, so
// fetches constantly miss, evict and flush.
TEST(BufferPoolConcurrencyTest, ConcurrentFetchNewPageStress) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kSharedPages = 64;
  constexpr uint32_t kPrivatePages = 24;
  constexpr int kIterations = 400;

  // 4 frames per thread: each task holds at most one pin at a time, so
  // victim search always finds an unpinned frame.
  StorageEnv env(kThreads * 4 * kPageSize);
  BufferPool* pool = env.pool();

  PBSM_ASSERT_OK_AND_ASSIGN(const FileId shared,
                            env.disk()->CreateFile("shared"));
  for (uint32_t p = 0; p < kSharedPages; ++p) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->NewPage(shared));
    StampPage(page.mutable_data(), shared, p);
    ASSERT_EQ(page.id().page_no, p);
  }
  PBSM_ASSERT_OK(pool->FlushAll());

  std::vector<FileId> private_files(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        private_files[t],
        env.disk()->CreateFile("private_" + std::to_string(t)));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7919u * (t + 1));
      uint32_t appended = 0;
      for (int i = 0; i < kIterations; ++i) {
        if (appended < kPrivatePages && rng.UniformDouble(0.0, 1.0) < 0.25) {
          // Writer path: allocate a private page and stamp it.
          auto page = pool->NewPage(private_files[t]);
          if (!page.ok()) {
            ++failures;
            continue;
          }
          StampPage(page->mutable_data(), private_files[t],
                    page->id().page_no);
          ++appended;
        } else {
          // Reader path: fetch a random page (shared or own private) and
          // verify its stamp.
          const bool own = appended > 0 && rng.UniformDouble(0.0, 1.0) < 0.3;
          const FileId file = own ? private_files[t] : shared;
          const uint32_t limit = own ? appended : kSharedPages;
          const uint32_t page_no =
              static_cast<uint32_t>(rng.Uniform(limit));
          auto page = pool->FetchPage(PageId{file, page_no});
          if (!page.ok() || !CheckPage(page->data(), file, page_no)) {
            ++failures;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // After the storm every page still holds its stamp (flush path wrote the
  // right bytes to the right offsets).
  PBSM_ASSERT_OK(pool->FlushAll());
  for (uint32_t p = 0; p < kSharedPages; ++p) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page,
                              pool->FetchPage(PageId{shared, p}));
    EXPECT_TRUE(CheckPage(page.data(), shared, p)) << "shared page " << p;
  }
  for (uint32_t t = 0; t < kThreads; ++t) {
    PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t pages,
                              env.disk()->NumPages(private_files[t]));
    for (uint32_t p = 0; p < pages; ++p) {
      PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page,
                                pool->FetchPage(PageId{private_files[t], p}));
      EXPECT_TRUE(CheckPage(page.data(), private_files[t], p))
          << "private file " << t << " page " << p;
    }
  }
}

// Many threads hammer the same single page: the io_busy latch must make
// exactly one thread read it from disk while the rest wait and share it.
TEST(BufferPoolConcurrencyTest, ConcurrentFetchOfSamePage) {
  constexpr uint32_t kThreads = 8;
  StorageEnv env(2 * kPageSize);
  BufferPool* pool = env.pool();
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("one"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->NewPage(file));
    StampPage(page.mutable_data(), file, 0);
  }
  PBSM_ASSERT_OK(pool->FlushAll());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto page = pool->FetchPage(PageId{file, 0});
        if (!page.ok() || !CheckPage(page->data(), file, 0)) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Regression: two threads can miss on the same page while eviction pressure
// forces the victim search to drop the pool mutex for a flush round. The
// loser must re-probe the page table and share the winner's frame; loading a
// second copy would orphan the live frame, and the orphan's later eviction
// erases the live frame's page-table entry, losing updates. The external
// mutex serialises the read-modify-write (the pool's contract for same-page
// writers), so any lost increment is a duplicated-frame bug.
TEST(BufferPoolConcurrencyTest, ConcurrentMissesShareOneFrameUnderPressure) {
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kFillerPages = 16;
  constexpr int kIncrements = 400;

  StorageEnv env(6 * kPageSize);  // Working set of 17 pages keeps evicting.
  BufferPool* pool = env.pool();
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId hot, env.disk()->CreateFile("hot"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->NewPage(hot));
    std::memset(page.mutable_data(), 0, kPageSize);
  }
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId filler,
                            env.disk()->CreateFile("filler"));
  for (uint32_t p = 0; p < kFillerPages; ++p) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->NewPage(filler));
    StampPage(page.mutable_data(), filler, p);
  }
  PBSM_ASSERT_OK(pool->FlushAll());

  std::mutex hot_mutex;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(104729u * (t + 1));
      for (int i = 0; i < kIncrements; ++i) {
        {
          // Dirty a filler page so evictions keep triggering flush rounds —
          // the window where the victim search releases the pool mutex.
          // Each thread owns a disjoint filler range (same-page writers must
          // coordinate externally; only the hot page is shared, under mutex).
          constexpr uint32_t kPerThread = kFillerPages / kThreads;
          const uint32_t p = t * kPerThread +
                             static_cast<uint32_t>(rng.Uniform(kPerThread));
          auto page = pool->FetchPage(PageId{filler, p});
          if (!page.ok()) {
            ++failures;
            continue;
          }
          StampPage(page->mutable_data(), filler, p);
        }
        std::lock_guard<std::mutex> guard(hot_mutex);
        auto page = pool->FetchPage(PageId{hot, 0});
        if (!page.ok()) {
          ++failures;
          continue;
        }
        uint64_t counter;
        std::memcpy(&counter, page->data(), sizeof(counter));
        ++counter;
        std::memcpy(page->mutable_data(), &counter, sizeof(counter));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  PBSM_ASSERT_OK(pool->FlushAll());
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->FetchPage(PageId{hot, 0}));
  uint64_t counter;
  std::memcpy(&counter, page.data(), sizeof(counter));
  EXPECT_EQ(counter, uint64_t{kThreads} * kIncrements);
}

// Regression: when every evictable frame is transiently latched for
// in-flight I/O (a flush round latches all dirty unpinned frames at once),
// the victim search must wait for a latch to clear instead of failing with
// ResourceExhausted. Frames equal threads here, so frames are never all
// pinned — any fetch failure is a spurious exhaustion.
TEST(BufferPoolConcurrencyTest, VictimSearchWaitsOutTransientIoLatches) {
  constexpr uint32_t kThreads = 8;
  constexpr uint32_t kPages = 32;
  StorageEnv env(kThreads * kPageSize);
  BufferPool* pool = env.pool();
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("tiny"));
  for (uint32_t p = 0; p < kPages; ++p) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, pool->NewPage(file));
    StampPage(page.mutable_data(), file, p);
  }
  PBSM_ASSERT_OK(pool->FlushAll());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(15485863u * (t + 1));
      for (int i = 0; i < 400; ++i) {
        // Disjoint pages per thread: writers of the same page would need
        // external coordination, which is not what this test is about.
        const uint32_t p =
            t + kThreads * static_cast<uint32_t>(rng.Uniform(kPages / kThreads));
        auto page = pool->FetchPage(PageId{file, p});
        if (!page.ok() || !CheckPage(page->data(), file, p)) {
          ++failures;
          continue;
        }
        // Re-dirty so every eviction must flush, keeping latches in play.
        StampPage(page->mutable_data(), file, p);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// Concurrent heap scans (the parallel filter access pattern): every thread
// scans a page range of the same heap file and must see every record.
TEST(BufferPoolConcurrencyTest, ConcurrentRangeScans) {
  constexpr uint32_t kThreads = 6;
  StorageEnv env(8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap,
                            HeapFile::Create(env.pool(), "scan_me"));
  const std::string record(512, 'x');
  constexpr int kRecords = 600;
  for (int i = 0; i < kRecords; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(record));
    (void)oid;
  }

  const uint32_t pages = heap.num_pages();
  std::atomic<uint64_t> seen{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) {
    const uint32_t begin = pages * t / kThreads;
    const uint32_t end = pages * (t + 1) / kThreads;
    threads.emplace_back([&, begin, end] {
      const Status st = heap.ScanPages(
          begin, end, [&](Oid, const char*, size_t size) -> Status {
            if (size != 512) return Status::Corruption("bad record size");
            seen.fetch_add(1);
            return Status::OK();
          });
      if (!st.ok()) ++failures;
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(seen.load(), static_cast<uint64_t>(kRecords));
}

}  // namespace
}  // namespace pbsm
