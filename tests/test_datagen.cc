#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/stats.h"

#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "geom/hilbert.h"
#include "geom/predicates.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(TigerGeneratorTest, IsDeterministic) {
  TigerGenerator::Params params;
  params.seed = 123;
  TigerGenerator g1(params), g2(params);
  const auto a = g1.GenerateRoads(50);
  const auto b = g2.GenerateRoads(50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].geometry, b[i].geometry);
    EXPECT_EQ(a[i].name, b[i].name);
  }
  // Different seed, different data.
  params.seed = 124;
  TigerGenerator g3(params);
  EXPECT_FALSE(g3.GenerateRoads(50)[0].geometry == a[0].geometry);
}

TEST(TigerGeneratorTest, AveragePointCountsMatchPaper) {
  TigerGenerator gen(TigerGenerator::Params{});
  const auto roads = gen.GenerateRoads(2000);
  const auto hydro = gen.GenerateHydrography(2000);
  const auto rail = gen.GenerateRail(2000);
  auto avg_points = [](const std::vector<Tuple>& ts) {
    double total = 0;
    for (const Tuple& t : ts) total += t.geometry.num_points();
    return total / ts.size();
  };
  // Paper: Road 8, Hydrography 19, Rail 7 (tolerate +-25%).
  EXPECT_NEAR(avg_points(roads), 8.0, 2.0);
  EXPECT_NEAR(avg_points(hydro), 19.0, 4.0);
  EXPECT_NEAR(avg_points(rail), 7.0, 2.0);
}

TEST(TigerGeneratorTest, FeaturesStayInUniverse) {
  TigerGenerator gen(TigerGenerator::Params{});
  for (const Tuple& t : gen.GenerateHydrography(500)) {
    EXPECT_TRUE(gen.universe().Contains(t.geometry.Mbr()));
    EXPECT_EQ(t.geometry.type(), GeometryType::kPolyline);
  }
}

TEST(TigerGeneratorTest, DataIsSpatiallySkewed) {
  // The defining property for Figure 4: a uniform grid over the universe
  // sees very non-uniform feature counts.
  TigerGenerator gen(TigerGenerator::Params{});
  const auto roads = gen.GenerateRoads(5000);
  const Rect u = gen.universe();
  constexpr int kGrid = 8;
  std::vector<uint64_t> counts(kGrid * kGrid, 0);
  for (const Tuple& t : roads) {
    const Point c = t.geometry.Mbr().Center();
    int cx = static_cast<int>((c.x - u.xlo) / u.width() * kGrid);
    int cy = static_cast<int>((c.y - u.ylo) / u.height() * kGrid);
    cx = std::min(cx, kGrid - 1);
    cy = std::min(cy, kGrid - 1);
    ++counts[cy * kGrid + cx];
  }
  const SampleStats stats = ComputeStats(counts);
  // A spatially uniform scatter of 5000 features over 64 cells would give
  // CoV ~= 1/sqrt(mean) ~= 0.11 (Poisson); require at least ~3x that.
  EXPECT_GT(stats.CoefficientOfVariation(), 0.35)
      << "generated data is too uniform to reproduce the paper's skew";
}

TEST(SequoiaGeneratorTest, PolygonShapes) {
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  const auto polys = gen.GeneratePolygons(500);
  double total_points = 0;
  int with_holes = 0;
  for (const Tuple& t : polys) {
    EXPECT_EQ(t.geometry.type(), GeometryType::kPolygon);
    total_points += t.geometry.num_points();
    if (t.geometry.num_holes() > 0) ++with_holes;
  }
  // Paper: polygon tuples average 46 points.
  EXPECT_NEAR(total_points / polys.size(), 46.0, 12.0);
  // Some swiss-cheese polygons exist.
  EXPECT_GT(with_holes, 50);
  EXPECT_LT(with_holes, 250);
}

TEST(SequoiaGeneratorTest, ContainedIslandsAreActuallyContained) {
  SequoiaGenerator::Params params;
  params.contained_fraction = 1.0;  // Every island placed inside a polygon.
  SequoiaGenerator gen(params);
  const auto polys = gen.GeneratePolygons(100);
  const auto islands = gen.GenerateIslands(100);
  int contained = 0;
  for (const Tuple& island : islands) {
    for (const Tuple& poly : polys) {
      if (Contains(poly.geometry, island.geometry)) {
        ++contained;
        break;
      }
    }
  }
  // Every island must be inside at least one polygon.
  EXPECT_EQ(contained, 100);
}

TEST(SequoiaGeneratorTest, FreeIslandsProduceNonResultCandidates) {
  SequoiaGenerator::Params params;
  params.contained_fraction = 0.0;
  SequoiaGenerator gen(params);
  const auto polys = gen.GeneratePolygons(50);
  const auto islands = gen.GenerateIslands(200);
  int contained = 0;
  for (const Tuple& island : islands) {
    for (const Tuple& poly : polys) {
      if (Contains(poly.geometry, island.geometry)) {
        ++contained;
        break;
      }
    }
  }
  // Random islands are rarely contained.
  EXPECT_LT(contained, 50);
}

TEST(LoaderTest, RegistersCatalogStatistics) {
  StorageEnv env(256 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  auto tuples = gen.GenerateRoads(500);
  Rect expected_universe;
  uint64_t expected_points = 0;
  for (const Tuple& t : tuples) {
    expected_universe.Expand(t.geometry.Mbr());
    expected_points += t.geometry.num_points();
  }
  Catalog catalog;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env.pool(), &catalog, "road", std::move(tuples)));
  EXPECT_EQ(rel.info.cardinality, 500u);
  EXPECT_EQ(rel.info.universe, expected_universe);
  EXPECT_EQ(rel.info.total_points, expected_points);
  EXPECT_EQ(rel.heap.num_records(), 500u);

  PBSM_ASSERT_OK_AND_ASSIGN(const RelationInfo from_catalog,
                            catalog.Get("road"));
  EXPECT_EQ(from_catalog.cardinality, 500u);
  EXPECT_FALSE(catalog.Get("missing").ok());
}

TEST(LoaderTest, ClusteredLoadOrdersByHilbert) {
  StorageEnv env(256 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  auto tuples = gen.GenerateRoads(500);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env.pool(), nullptr, "road_cl", std::move(tuples),
                   /*clustered=*/true));
  // Scan back and verify Hilbert keys are non-decreasing.
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert,
                                rel.info.universe);
  uint64_t prev_key = 0;
  bool first = true;
  PBSM_ASSERT_OK(
      rel.heap.Scan([&](Oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(data, size));
        const uint64_t key = curve.Key(t.geometry.Mbr());
        if (!first) {
          EXPECT_GE(key, prev_key);
        }
        prev_key = key;
        first = false;
        return Status::OK();
      }));
}

TEST(LoaderTest, ClusteredAndUnclusteredHoldSameTuples) {
  StorageEnv env(256 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  const auto tuples = gen.GenerateRoads(300);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation plain,
      LoadRelation(env.pool(), nullptr, "a", tuples, false));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation clustered,
      LoadRelation(env.pool(), nullptr, "b", tuples, true));
  EXPECT_EQ(plain.info.cardinality, clustered.info.cardinality);
  EXPECT_EQ(plain.info.universe, clustered.info.universe);
  EXPECT_EQ(plain.info.total_points, clustered.info.total_points);
}

}  // namespace
}  // namespace pbsm
