// Fault-injection suite: scripted storage failures must surface as non-OK
// Status at every public entry point — never as a crash, an abort, or a
// silently wrong answer — and transient faults must be retried away without
// perturbing join results (verified against the same brute-force oracle the
// differential suite uses).
//
// Everything is deterministic: the injector derives all decisions from one
// seeded Rng, so a failing scenario replays identically from its seed.

#include "storage/fault_injector.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "datagen/tiger_gen.h"
#include "service/join_router.h"
#include "service/shard_manager.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

uint64_t GlobalCounter(const std::string& name) {
  return MetricsRegistry::Global().Snapshot().counter(name);
}

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ParseAcceptsFullProfile) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto injector,
      FaultInjector::Parse("seed=42;read=0.01;write=0.005,alloc=1x1;torn=0.5"));
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->injected_faults(), 0u);
}

TEST(FaultInjectorTest, ParseRejectsMalformedProfiles) {
  EXPECT_FALSE(FaultInjector::Parse("read").ok());
  EXPECT_FALSE(FaultInjector::Parse("frobnicate=0.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("read=1.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("read=abc").ok());
  EXPECT_FALSE(FaultInjector::Parse("read=0.5x0").ok());
  EXPECT_FALSE(FaultInjector::Parse("read=0.5junk").ok());
}

TEST(FaultInjectorTest, DecisionsAreDeterministicInSeed) {
  auto run = [] {
    FaultInjector injector(/*seed=*/99);
    FaultRule rule;
    rule.op = FaultOp::kRead;
    rule.probability = 0.3;
    injector.AddRule(rule);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(
          !injector.Decide(FaultOp::kRead, PageId{1, 0}).status.ok());
    }
    return fired;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectorTest, AtOpFiresExactlyOnceAndBurstDisarms) {
  FaultInjector injector(/*seed=*/1);
  FaultRule at3;
  at3.op = FaultOp::kWrite;
  at3.at_op = 3;
  injector.AddRule(at3);
  for (int i = 1; i <= 6; ++i) {
    const bool failed =
        !injector.Decide(FaultOp::kWrite, PageId{1, 0}).status.ok();
    EXPECT_EQ(failed, i == 3) << "op " << i;
  }

  FaultInjector burst(/*seed=*/1);
  FaultRule two;
  two.op = FaultOp::kRead;
  two.probability = 1.0;
  two.max_faults = 2;  // Fails twice, then the "device" recovers.
  burst.AddRule(two);
  EXPECT_FALSE(burst.Decide(FaultOp::kRead, PageId{1, 0}).status.ok());
  EXPECT_FALSE(burst.Decide(FaultOp::kRead, PageId{1, 0}).status.ok());
  EXPECT_TRUE(burst.Decide(FaultOp::kRead, PageId{1, 0}).status.ok());
  EXPECT_EQ(burst.injected_faults(), 2u);
}

// ---------------------------------------------------------------------------
// DiskManager integration: errors, ENOSPC, torn writes + checksums.
// ---------------------------------------------------------------------------

TEST(DiskFaultTest, ReadFaultSurfacesAsIoError) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("fault_read"));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t page_no,
                            env.disk()->AllocatePage(file));
  std::vector<char> buf(kPageSize, 'x');
  PBSM_ASSERT_OK(env.disk()->WritePage(PageId{file, page_no}, buf.data()));

  auto injector = std::make_shared<FaultInjector>(7);
  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.at_op = 1;
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const Status failed = env.disk()->ReadPage(PageId{file, page_no}, buf.data());
  EXPECT_EQ(failed.code(), StatusCode::kIoError) << failed.ToString();
  // The rule fired once; the device is healthy again and data is intact.
  std::vector<char> again(kPageSize);
  PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, page_no}, again.data()));
  EXPECT_EQ(std::memcmp(again.data(), buf.data(), kPageSize), 0);
  EXPECT_EQ(injector->injected_faults(), 1u);
}

TEST(DiskFaultTest, AllocationFaultSurfacesAsResourceExhausted) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("fault_alloc"));
  auto injector = std::make_shared<FaultInjector>(7);
  FaultRule rule;
  rule.op = FaultOp::kAllocate;
  rule.probability = 1.0;
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const auto alloc = env.disk()->AllocatePage(file);
  ASSERT_FALSE(alloc.ok());
  EXPECT_EQ(alloc.status().code(), StatusCode::kResourceExhausted);
  // A failed allocation must not grow the file.
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t pages, env.disk()->NumPages(file));
  EXPECT_EQ(pages, 0u);
}

TEST(DiskFaultTest, TornWriteIsDetectedByChecksumOnRead) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("fault_torn"));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t page_no,
                            env.disk()->AllocatePage(file));

  auto injector = std::make_shared<FaultInjector>(7);
  FaultRule rule;
  rule.op = FaultOp::kWrite;
  rule.kind = FaultKind::kTornWrite;
  rule.at_op = 1;
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const uint64_t torn_before = GlobalCounter("io.torn_pages_detected");
  std::vector<char> buf(kPageSize);
  for (size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<char>(i * 31);
  // The torn write *reports success* — that is the failure mode: a crash
  // mid-write that nobody notices until the page is read back.
  PBSM_ASSERT_OK(env.disk()->WritePage(PageId{file, page_no}, buf.data()));

  std::vector<char> read_buf(kPageSize);
  const Status corrupt =
      env.disk()->ReadPage(PageId{file, page_no}, read_buf.data());
  EXPECT_EQ(corrupt.code(), StatusCode::kCorruption) << corrupt.ToString();
  EXPECT_EQ(GlobalCounter("io.torn_pages_detected"), torn_before + 1);

  // A full rewrite heals the page.
  PBSM_ASSERT_OK(env.disk()->WritePage(PageId{file, page_no}, buf.data()));
  PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, page_no}, read_buf.data()));
  EXPECT_EQ(std::memcmp(read_buf.data(), buf.data(), kPageSize), 0);
}

// ---------------------------------------------------------------------------
// BufferPool integration: bounded retry, clean unpin on failure.
// ---------------------------------------------------------------------------

TEST(BufferPoolFaultTest, TransientReadFaultIsRetriedTransparently) {
  StorageEnv env(/*pool_bytes=*/4 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("retry_read"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
    std::memset(page.mutable_data(), 0x5a, kPageSize);
  }
  PBSM_ASSERT_OK(env.pool()->FlushAll());
  // Force the page out of the pool by cycling other pages through it, so
  // the fetch below performs a real disk read.
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId filler,
                            env.disk()->CreateFile("filler"));
  for (int i = 0; i < 8; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(filler));
    std::memset(page.mutable_data(), 0, kPageSize);
  }

  auto injector = std::make_shared<FaultInjector>(7);
  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;
  rule.max_faults = 2;  // Two failures, then recovery: within retry budget.
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const uint64_t retries_before = GlobalCounter("io.retries");
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page,
                            env.pool()->FetchPage(PageId{file, 0}));
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(page.data()[i], 0x5a) << "byte " << i;
  }
  EXPECT_GE(GlobalCounter("io.retries"), retries_before + 2);
  EXPECT_EQ(injector->injected_faults(), 2u);
}

TEST(BufferPoolFaultTest, PermanentReadFaultFailsFetchAndLeavesNoPins) {
  StorageEnv env(/*pool_bytes=*/4 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("perm_read"));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t page_no,
                            env.disk()->AllocatePage(file));

  auto injector = std::make_shared<FaultInjector>(7);
  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;  // Permanent: every attempt fails, retries included.
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const auto fetch = env.pool()->FetchPage(PageId{file, page_no});
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kIoError);
  // The failed fetch must not leak its frame: nothing pinned, and the pool
  // still has room for other work.
  EXPECT_EQ(env.pool()->pinned_frames(), 0u);
  env.disk()->set_fault_injector(nullptr);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId other,
                            env.disk()->CreateFile("healthy"));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(other));
  std::memset(page.mutable_data(), 1, kPageSize);
}

// ---------------------------------------------------------------------------
// End-to-end: all six join methods under injected faults.
// ---------------------------------------------------------------------------

class JoinFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 7;
    // An eighth of the default universe: denser features, so the join has a
    // few hundred genuine result pairs for the bit-identical comparison.
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(400);
    hydro_ = gen.GenerateHydrography(180);
    expected_ = BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);
    ASSERT_GT(expected_.size(), 0u);
  }

  JoinSpec Spec(JoinMethod method, uint32_t threads,
                SimdMode simd = SimdMode::kAuto) const {
    JoinSpec spec;
    spec.method = method;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.options.num_tiles = 64;
    spec.options.num_threads = threads;
    spec.options.simd = simd;
    return spec;
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
  IdPairSet expected_;
};

TEST_F(JoinFaultTest, TransientReadFaultsPreserveResultsOnEveryMethod) {
  // Acceptance criterion: under >= 1% transient read faults every method
  // completes with bit-identical results and zero aborts. A generous retry
  // budget (8 attempts at 5% per-attempt failure) makes an unrecovered read
  // a ~4e-11 event per I/O — and the seeded injector makes whatever happens
  // replay identically.
  IoRetryPolicy retry;
  retry.max_attempts = 8;
  retry.backoff_us = 1;
  // Both filter kernels must stay bit-identical with faults armed (kAvx2
  // resolves to scalar on hosts without AVX2).
  for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
    SCOPED_TRACE(simd == SimdMode::kScalar ? "simd=scalar" : "simd=avx2");
    for (const JoinMethod method : AllJoinMethods()) {
      SCOPED_TRACE(JoinMethodName(method));
      // A tiny pool forces real disk reads (and hence injector hits) instead
      // of serving the whole join from cache.
      StorageEnv env(/*pool_bytes=*/8 * kPageSize, DiskModel(), retry);
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation r,
          LoadRelation(env.pool(), nullptr, "road", roads_));
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation s,
          LoadRelation(env.pool(), nullptr, "hydro", hydro_));
      PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
      PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

      PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                                FaultInjector::Parse("seed=11;read=0.05"));
      env.disk()->set_fault_injector(injector);

      const uint64_t faults_before = GlobalCounter("io.injected_faults");
      PBSM_ASSERT_OK_AND_ASSIGN(
          const IdPairSet got,
          RunJoinToIdPairs(env.pool(), r, s,
                           Spec(method, /*threads=*/3, simd), &r_ids,
                           &s_ids));
      EXPECT_EQ(got, expected_);
      // The scenario must actually have exercised the fault path.
      EXPECT_GT(GlobalCounter("io.injected_faults"), faults_before);
      EXPECT_EQ(env.pool()->pinned_frames(), 0u);
    }
  }
}

TEST_F(JoinFaultTest, PermanentReadFaultFailsEveryMethodWithoutLeaks) {
  for (const JoinMethod method : AllJoinMethods()) {
    SCOPED_TRACE(JoinMethodName(method));
    StorageEnv env(/*pool_bytes=*/8 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "road", roads_));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", hydro_));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

    PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                              FaultInjector::Parse("seed=11;read=1"));
    env.disk()->set_fault_injector(injector);

    const auto got = RunJoinToIdPairs(
        env.pool(), r, s, Spec(method, /*threads=*/4), &r_ids, &s_ids);
    ASSERT_FALSE(got.ok()) << "method survived a dead disk";
    // The first real error wins — never the siblings' kCancelled noise.
    EXPECT_EQ(got.status().code(), StatusCode::kIoError)
        << got.status().ToString();
    EXPECT_EQ(env.pool()->pinned_frames(), 0u);
    // The facade records the failure per method.
    EXPECT_GT(GlobalCounter("join.failures." +
                            std::string(JoinMethodName(method))),
              0u);
  }
}

TEST_F(JoinFaultTest, EnospcDuringJoinSurfacesAsResourceExhausted) {
  // Allocation failures hit methods that spool intermediates (temp files,
  // index builds). Methods that never allocate during the join legitimately
  // succeed — but none may crash or mis-answer.
  for (const JoinMethod method : AllJoinMethods()) {
    SCOPED_TRACE(JoinMethodName(method));
    StorageEnv env(/*pool_bytes=*/8 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "road", roads_));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", hydro_));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

    PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                              FaultInjector::Parse("seed=11;alloc=1"));
    env.disk()->set_fault_injector(injector);

    const auto got = RunJoinToIdPairs(
        env.pool(), r, s, Spec(method, /*threads=*/2), &r_ids, &s_ids);
    if (got.ok()) {
      EXPECT_EQ(*got, expected_);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
          << got.status().ToString();
    }
    EXPECT_EQ(env.pool()->pinned_frames(), 0u);
  }
}

TEST_F(JoinFaultTest, TornWriteDuringJoinSurfacesAsCorruption) {
  // One torn page among the join's own writes (spool runs, index pages):
  // the checksum catches it on read-back and the join fails with
  // Corruption instead of emitting pairs computed from garbage. The tiny
  // pool guarantees the torn page is written out and read back.
  for (const JoinMethod method :
       {JoinMethod::kPbsm, JoinMethod::kParallelPbsm, JoinMethod::kRtree}) {
    SCOPED_TRACE(JoinMethodName(method));
    StorageEnv env(/*pool_bytes=*/8 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "road", roads_));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", hydro_));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

    auto injector = std::make_shared<FaultInjector>(11);
    FaultRule rule;
    rule.op = FaultOp::kWrite;
    rule.kind = FaultKind::kTornWrite;
    rule.at_op = 3;  // Tear the third write after the join starts.
    injector->AddRule(rule);
    env.disk()->set_fault_injector(injector);

    const uint64_t torn_before = GlobalCounter("io.torn_pages_detected");
    const auto got = RunJoinToIdPairs(
        env.pool(), r, s, Spec(method, /*threads=*/2), &r_ids, &s_ids);
    if (got.ok()) {
      // The torn page happened never to be read back (it was rewritten
      // first); the answer must still be exact.
      EXPECT_EQ(*got, expected_);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
          << got.status().ToString();
      EXPECT_GT(GlobalCounter("io.torn_pages_detected"), torn_before);
    }
    EXPECT_EQ(env.pool()->pinned_frames(), 0u);
  }
}

TEST_F(JoinFaultTest, ParallelJoinReportsFirstRealErrorNotCancellation) {
  StorageEnv env(/*pool_bytes=*/8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const StoredRelation r,
                            LoadRelation(env.pool(), nullptr, "road", roads_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation s,
      LoadRelation(env.pool(), nullptr, "hydro", hydro_));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

  auto injector = std::make_shared<FaultInjector>(11);
  FaultRule rule;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;
  injector->AddRule(rule);
  env.disk()->set_fault_injector(injector);

  const auto got = RunJoinToIdPairs(env.pool(), r, s,
                                    Spec(JoinMethod::kParallelPbsm,
                                         /*threads=*/4),
                                    &r_ids, &s_ids);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIoError)
      << got.status().ToString();
  EXPECT_NE(got.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(env.pool()->pinned_frames(), 0u);
}

// ---------------------------------------------------------------------------
// Sharded service: faults on one shard's private DiskManager. The router
// must surface the faulty shard's real error (cancelling siblings without
// letting their kCancelled mask it), retry transient faults away, and keep
// dead shards outside a window's dispatch set from affecting the query.
// ---------------------------------------------------------------------------

/// Global relations plus a ShardManager with both registered, mirroring the
/// service tests' environment.
struct ShardedEnv {
  StorageEnv storage{512 * kPageSize};
  std::optional<StoredRelation> road, hydro;
  std::optional<ShardManager> shards;
  std::map<uint64_t, uint64_t> road_ids, hydro_ids;  // Global OID -> id.
};

/// Loads the fixture relations and registers them into `num_shards` shards.
/// Small per-shard pools force sub-joins to perform real disk reads (so an
/// armed injector actually fires); callers arm injectors AFTER this returns,
/// so registration I/O is never faulted.
void StartSharded(ShardedEnv* env, const std::vector<Tuple>& roads,
                  const std::vector<Tuple>& hydro, uint32_t num_shards,
                  size_t shard_pool_bytes,
                  IoRetryPolicy retry = IoRetryPolicy()) {
  auto road = LoadRelation(env->storage.pool(), nullptr, "road", roads);
  ASSERT_TRUE(road.ok()) << road.status().ToString();
  env->road.emplace(std::move(road).value());
  auto hydro_rel = LoadRelation(env->storage.pool(), nullptr, "hydro", hydro);
  ASSERT_TRUE(hydro_rel.ok()) << hydro_rel.status().ToString();
  env->hydro.emplace(std::move(hydro_rel).value());

  ShardManagerConfig config;
  config.num_shards = num_shards;
  config.shard_pool_bytes = shard_pool_bytes;
  config.io_retry = retry;
  env->shards.emplace(config);
  PBSM_ASSERT_OK(env->shards->RegisterDataset("road", &env->road->heap,
                                              env->road->info));
  PBSM_ASSERT_OK(env->shards->RegisterDataset("hydro", &env->hydro->heap,
                                              env->hydro->info));
  PBSM_ASSERT_OK_AND_ASSIGN(env->road_ids, OidToIdMap(env->road->heap));
  PBSM_ASSERT_OK_AND_ASSIGN(env->hydro_ids, OidToIdMap(env->hydro->heap));
}

/// Thread-safe collecting sink (router sinks fire concurrently from shard
/// workers) that translates global-OID pairs back into tuple-id space.
struct CollectingSink {
  std::mutex mutex;
  std::vector<std::pair<uint64_t, uint64_t>> raw;

  ResultSink Sink() {
    return [this](Oid ro, Oid so) {
      std::lock_guard<std::mutex> lock(mutex);
      raw.emplace_back(ro.Encode(), so.Encode());
    };
  }

  IdPairSet ToIds(const ShardedEnv& env) {
    std::lock_guard<std::mutex> lock(mutex);
    IdPairSet out;
    for (const auto& [ro, so] : raw) {
      out.emplace(env.road_ids.at(ro), env.hydro_ids.at(so));
    }
    return out;
  }
};

TEST_F(JoinFaultTest, ShardedPermanentFaultOnOneShardCancelsSiblings) {
  ShardedEnv env;
  StartSharded(&env, roads_, hydro_, /*num_shards=*/4,
               /*shard_pool_bytes=*/8 * kPageSize);
  ASSERT_TRUE(env.shards.has_value());

  PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                            FaultInjector::Parse("seed=11;read=1"));
  env.shards->shard(1).disk->set_fault_injector(injector);

  JoinRouter router(&*env.shards, JoinRouterConfig());
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;

  const auto got = router.Execute(request);
  ASSERT_FALSE(got.ok()) << "query survived a dead shard disk";
  // The faulty shard's real error wins the gather; the sibling sub-joins it
  // cancelled must not mask it with kCancelled.
  EXPECT_EQ(got.status().code(), StatusCode::kIoError)
      << got.status().ToString();
  EXPECT_GT(injector->injected_faults(), 0u);
  // The failed scatter leaks nothing: every shard pool fully unpinned.
  EXPECT_EQ(env.shards->total_pinned_frames(), 0u);

  // Heal the disk: the same router must now answer exactly.
  env.shards->shard(1).disk->set_fault_injector(nullptr);
  CollectingSink sink;
  JoinRequest healthy = request;
  healthy.sink = sink.Sink();
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse response,
                            router.Execute(healthy));
  EXPECT_EQ(sink.ToIds(env), expected_);
  EXPECT_EQ(response.num_results, expected_.size());
  EXPECT_EQ(env.shards->total_pinned_frames(), 0u);
  router.Shutdown();
}

TEST_F(JoinFaultTest, ShardedTransientFaultsAreRetriedTransparently) {
  IoRetryPolicy retry;
  retry.max_attempts = 8;
  retry.backoff_us = 1;
  ShardedEnv env;
  StartSharded(&env, roads_, hydro_, /*num_shards=*/4,
               /*shard_pool_bytes=*/8 * kPageSize, retry);
  ASSERT_TRUE(env.shards.has_value());

  // A shard slice reads far fewer pages than a whole-relation join, so the
  // per-read rate is higher than the unsharded test's 5%; 8 retry attempts
  // still make an unrecovered read a ~1.5e-5 event per I/O.
  PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                            FaultInjector::Parse("seed=11;read=0.25"));
  env.shards->shard(1).disk->set_fault_injector(injector);

  JoinRouter router(&*env.shards, JoinRouterConfig());
  CollectingSink sink;
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;
  request.sink = sink.Sink();

  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse response,
                            router.Execute(request));
  EXPECT_EQ(sink.ToIds(env), expected_);
  EXPECT_EQ(response.num_results, expected_.size());
  // The scenario must actually have exercised the fault + retry path.
  EXPECT_GT(injector->injected_faults(), 0u);
  EXPECT_EQ(env.shards->total_pinned_frames(), 0u);
  router.Shutdown();
}

TEST_F(JoinFaultTest, ShardedFaultOutsideWindowDispatchDoesNotAffectQuery) {
  ShardedEnv env;
  StartSharded(&env, roads_, hydro_, /*num_shards=*/4,
               /*shard_pool_bytes=*/8 * kPageSize);
  ASSERT_TRUE(env.shards.has_value());

  // Kill shard 0's disk outright, then query a window strictly inside
  // shard 2's strip: the scatter must never dispatch to (or read from) the
  // dead shard.
  PBSM_ASSERT_OK_AND_ASSIGN(auto injector,
                            FaultInjector::Parse("seed=11;read=1"));
  env.shards->shard(0).disk->set_fault_injector(injector);

  const ShardLayout layout = env.shards->layout();
  const Rect strip = layout.Extent(2);
  const double margin = strip.width() / 4.0;
  const Rect window(strip.xlo + margin, strip.ylo, strip.xhi - margin,
                    strip.yhi);

  JoinRouter router(&*env.shards, JoinRouterConfig());
  CollectingSink sink;
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;
  request.window = window;
  request.sink = sink.Sink();

  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse response,
                            router.Execute(request));
  ASSERT_EQ(response.shard_slices.size(), 1u);
  EXPECT_EQ(response.shard_slices[0].shard, 2u);

  const IdPairSet expected =
      WindowOracle(roads_, hydro_, SpatialPredicate::kIntersects, window);
  EXPECT_GT(expected.size(), 0u) << "degenerate window; widen the strip";
  EXPECT_EQ(sink.ToIds(env), expected);
  EXPECT_EQ(response.num_results, expected.size());
  EXPECT_EQ(injector->injected_faults(), 0u)
      << "the dead shard's disk was read";
  EXPECT_EQ(env.shards->total_pinned_frames(), 0u);
  router.Shutdown();
}

}  // namespace
}  // namespace pbsm
