#include "geom/geometry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "geom/predicates.h"
#include "geom/segment.h"

namespace pbsm {
namespace {

TEST(GeometryTest, PointBasics) {
  const Geometry g = Geometry::MakePoint({3, 4});
  EXPECT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.num_points(), 1u);
  EXPECT_EQ(g.Mbr(), Rect(3, 4, 3, 4));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  EXPECT_TRUE(segs.empty());
}

TEST(GeometryTest, PolylineBasics) {
  const Geometry g = Geometry::MakePolyline({{0, 0}, {1, 2}, {3, 1}});
  EXPECT_EQ(g.type(), GeometryType::kPolyline);
  EXPECT_EQ(g.num_points(), 3u);
  EXPECT_EQ(g.Mbr(), Rect(0, 0, 3, 2));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  // Open chain: 2 segments, no closing edge.
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].a, (Point{0, 0}));
  EXPECT_EQ(segs[1].b, (Point{3, 1}));
}

TEST(GeometryTest, PolygonWithHoleBasics) {
  const Geometry g = Geometry::MakePolygon(
      {{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
       {{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  EXPECT_EQ(g.num_points(), 8u);
  EXPECT_EQ(g.num_holes(), 1u);
  EXPECT_EQ(g.Mbr(), Rect(0, 0, 10, 10));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  // Rings are implicitly closed: 4 + 4 edges.
  EXPECT_EQ(segs.size(), 8u);
}

TEST(GeometryTest, SerializationRoundTripPolyline) {
  const Geometry g = Geometry::MakePolyline({{0.5, -1.25}, {3e10, 4e-10}});
  std::string buf;
  g.AppendTo(&buf);
  EXPECT_EQ(buf.size(), g.SerializedSize());
  size_t consumed = 0;
  auto parsed = Geometry::Parse(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(*parsed, g);
  EXPECT_EQ(parsed->Mbr(), g.Mbr());
}

TEST(GeometryTest, ParseRejectsTruncation) {
  const Geometry g = Geometry::MakePolygon(
      {{{0, 0}, {1, 0}, {1, 1}}, {{0.2, 0.2}, {0.4, 0.2}, {0.3, 0.4}}});
  std::string buf;
  g.AppendTo(&buf);
  for (const size_t cut : {size_t{0}, size_t{3}, buf.size() / 2,
                           buf.size() - 1}) {
    size_t consumed = 0;
    auto parsed = Geometry::Parse(
        reinterpret_cast<const uint8_t*>(buf.data()), cut, &consumed);
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(GeometryTest, ParseRejectsBadTypeTag) {
  std::string buf;
  Geometry::MakePoint({1, 2}).AppendTo(&buf);
  buf[0] = 9;  // Invalid tag.
  size_t consumed = 0;
  auto parsed = Geometry::Parse(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  EXPECT_FALSE(parsed.ok());
}

TEST(GeometryTest, WktRendering) {
  EXPECT_EQ(Geometry::MakePoint({1, 2}).ToWkt().substr(0, 6), "POINT ");
  const std::string line =
      Geometry::MakePolyline({{0, 0}, {1, 1}}).ToWkt();
  EXPECT_EQ(line.substr(0, 11), "LINESTRING ");
  const std::string poly =
      Geometry::MakePolygon({{{0, 0}, {1, 0}, {0, 1}}}).ToWkt();
  EXPECT_EQ(poly.substr(0, 8), "POLYGON ");
  // Polygon rings render with the closing vertex repeated.
  EXPECT_NE(poly.find("0.000000 0.000000)"), std::string::npos);
}

class GeometryRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryRoundTripTest, RandomGeometriesSurviveSerialization) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Geometry g = Geometry::MakePoint({0, 0});
    const int kind = static_cast<int>(rng.Uniform(3));
    auto rand_pt = [&]() {
      return Point{rng.UniformDouble(-100, 100), rng.UniformDouble(-100, 100)};
    };
    if (kind == 0) {
      g = Geometry::MakePoint(rand_pt());
    } else if (kind == 1) {
      std::vector<Point> pts;
      const int n = 2 + static_cast<int>(rng.Uniform(30));
      for (int i = 0; i < n; ++i) pts.push_back(rand_pt());
      g = Geometry::MakePolyline(std::move(pts));
    } else {
      std::vector<std::vector<Point>> rings;
      const int nrings = 1 + static_cast<int>(rng.Uniform(3));
      for (int r = 0; r < nrings; ++r) {
        std::vector<Point> ring;
        const int n = 3 + static_cast<int>(rng.Uniform(20));
        for (int i = 0; i < n; ++i) ring.push_back(rand_pt());
        rings.push_back(std::move(ring));
      }
      g = Geometry::MakePolygon(std::move(rings));
    }
    std::string buf;
    g.AppendTo(&buf);
    ASSERT_EQ(buf.size(), g.SerializedSize());
    size_t consumed = 0;
    auto parsed = Geometry::Parse(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(consumed, buf.size());
    EXPECT_EQ(*parsed, g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryRoundTripTest,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------------
// Property-based fuzz: the production predicates vs independent oracles,
// driven by a fixed seed corpus so every run replays the same cases and a
// failure message pins the exact (seed, iteration) to reproduce.
// ---------------------------------------------------------------------------

Point RandomPoint(Rng* rng, double lo = -50, double hi = 50) {
  return Point{rng->UniformDouble(lo, hi), rng->UniformDouble(lo, hi)};
}

/// Short random segment; small extents make intersections non-trivially
/// rare (roughly half the sampled pairs intersect, half do not).
Segment RandomSegment(Rng* rng) {
  const Point a = RandomPoint(rng);
  return Segment{a, Point{a.x + rng->UniformDouble(-12, 12),
                          a.y + rng->UniformDouble(-12, 12)}};
}

/// Random convex ring in counter-clockwise order: points sorted by angle
/// around their centroid. Convexity is what gives us an independent exact
/// containment oracle (the half-plane test below).
std::vector<Point> RandomConvexRing(Rng* rng) {
  const Point center = RandomPoint(rng, -30, 30);
  const double radius = rng->UniformDouble(2, 25);
  const int n = 3 + static_cast<int>(rng->Uniform(8));
  std::vector<double> angles;
  for (int i = 0; i < n; ++i) {
    angles.push_back(rng->UniformDouble(0, 2 * 3.14159265358979323846));
  }
  std::sort(angles.begin(), angles.end());
  std::vector<Point> ring;
  for (const double a : angles) {
    ring.push_back(Point{center.x + radius * std::cos(a),
                         center.y + radius * std::sin(a)});
  }
  return ring;
}

/// Exact containment oracle for a CCW convex ring: inside (boundary
/// inclusive) iff `p` is on the left of, or collinear with, every edge.
/// Shares nothing with PointInRing's crossing-number implementation.
bool ConvexRingContains(const Point& p, const std::vector<Point>& ring) {
  for (size_t i = 0; i < ring.size(); ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1) % ring.size()];
    if (Orientation(a, b, p) < 0) return false;
  }
  return true;
}

TEST(GeometryFuzzTest, SegmentSetsPlaneSweepMatchesQuadraticOracle) {
  for (const uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    for (int iter = 0; iter < 300; ++iter) {
      std::vector<Segment> red, blue;
      const int nr = 1 + static_cast<int>(rng.Uniform(12));
      const int nb = 1 + static_cast<int>(rng.Uniform(12));
      for (int i = 0; i < nr; ++i) red.push_back(RandomSegment(&rng));
      for (int i = 0; i < nb; ++i) blue.push_back(RandomSegment(&rng));

      // Oracle: raw all-pairs over the exact segment primitive.
      bool oracle = false;
      for (const Segment& r : red) {
        for (const Segment& b : blue) {
          if (SegmentsIntersect(r, b)) {
            oracle = true;
            break;
          }
        }
        if (oracle) break;
      }
      EXPECT_EQ(SegmentSetsIntersect(red, blue, SegmentTestMode::kPlaneSweep),
                oracle)
          << "seed=" << seed << " iter=" << iter;
      EXPECT_EQ(SegmentSetsIntersect(red, blue, SegmentTestMode::kNaive),
                oracle)
          << "seed=" << seed << " iter=" << iter;
    }
  }
}

TEST(GeometryFuzzTest, PointInConvexRingMatchesHalfPlaneOracle) {
  for (const uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    for (int iter = 0; iter < 200; ++iter) {
      const std::vector<Point> ring = RandomConvexRing(&rng);
      for (int q = 0; q < 12; ++q) {
        // Mix far-away points with points near (and exactly on) the
        // boundary, where crossing-number implementations break first.
        Point p;
        if (q < 6) {
          p = RandomPoint(&rng, -60, 60);
        } else if (q < 9) {
          const Point& a = ring[rng.Uniform(ring.size())];
          p = Point{a.x + rng.UniformDouble(-0.5, 0.5),
                    a.y + rng.UniformDouble(-0.5, 0.5)};
        } else {
          p = ring[rng.Uniform(ring.size())];  // Exactly a vertex.
        }
        EXPECT_EQ(PointInRing(p, ring), ConvexRingContains(p, ring))
            << "seed=" << seed << " iter=" << iter << " p=(" << p.x << ","
            << p.y << ")";
      }
    }
  }
}

TEST(GeometryFuzzTest, PointInPolygonRespectsHoles) {
  for (const uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    for (int iter = 0; iter < 150; ++iter) {
      const std::vector<Point> outer = RandomConvexRing(&rng);
      // A hole strictly inside the outer ring: shrink it towards its
      // centroid so every hole vertex stays interior.
      Point c{0, 0};
      for (const Point& p : outer) {
        c.x += p.x;
        c.y += p.y;
      }
      c.x /= static_cast<double>(outer.size());
      c.y /= static_cast<double>(outer.size());
      std::vector<Point> hole;
      for (const Point& p : outer) {
        hole.push_back(Point{c.x + (p.x - c.x) * 0.4,
                             c.y + (p.y - c.y) * 0.4});
      }
      const Geometry polygon = Geometry::MakePolygon({outer, hole});

      for (int q = 0; q < 10; ++q) {
        const Point p = RandomPoint(&rng, -60, 60);
        const bool in_outer = ConvexRingContains(p, outer);
        const bool in_hole = ConvexRingContains(p, hole);
        bool on_hole_boundary = false;
        for (size_t i = 0; i < hole.size(); ++i) {
          if (PointOnSegment(
                  p, Segment{hole[i], hole[(i + 1) % hole.size()]})) {
            on_hole_boundary = true;
            break;
          }
        }
        // Boundary-inclusive semantics: a point on the hole's boundary
        // still belongs to the polygon.
        const bool oracle = in_outer && (!in_hole || on_hole_boundary);
        EXPECT_EQ(PointInPolygon(p, polygon), oracle)
            << "seed=" << seed << " iter=" << iter << " p=(" << p.x << ","
            << p.y << ")";
      }
    }
  }
}

TEST(GeometryFuzzTest, IntersectsModesAgreeAndAreSymmetric) {
  for (const uint64_t seed : {31u, 32u, 33u}) {
    Rng rng(seed);
    for (int iter = 0; iter < 150; ++iter) {
      auto random_geometry = [&]() -> Geometry {
        const int kind = static_cast<int>(rng.Uniform(3));
        if (kind == 0) return Geometry::MakePoint(RandomPoint(&rng));
        if (kind == 1) {
          std::vector<Point> pts{RandomPoint(&rng)};
          const int n = 1 + static_cast<int>(rng.Uniform(8));
          for (int i = 0; i < n; ++i) {
            pts.push_back(Point{pts.back().x + rng.UniformDouble(-10, 10),
                                pts.back().y + rng.UniformDouble(-10, 10)});
          }
          return Geometry::MakePolyline(std::move(pts));
        }
        return Geometry::MakePolygon({RandomConvexRing(&rng)});
      };
      const Geometry a = random_geometry();
      const Geometry b = random_geometry();
      const bool naive = Intersects(a, b, SegmentTestMode::kNaive);
      EXPECT_EQ(Intersects(a, b, SegmentTestMode::kPlaneSweep), naive)
          << "seed=" << seed << " iter=" << iter;
      EXPECT_EQ(Intersects(b, a, SegmentTestMode::kNaive), naive)
          << "symmetry, seed=" << seed << " iter=" << iter;
      // Disjoint MBRs must imply a negative answer (the filter step's
      // correctness precondition).
      if (!a.Mbr().Intersects(b.Mbr())) EXPECT_FALSE(naive);
    }
  }
}

}  // namespace
}  // namespace pbsm
