#include "geom/geometry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace pbsm {
namespace {

TEST(GeometryTest, PointBasics) {
  const Geometry g = Geometry::MakePoint({3, 4});
  EXPECT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.num_points(), 1u);
  EXPECT_EQ(g.Mbr(), Rect(3, 4, 3, 4));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  EXPECT_TRUE(segs.empty());
}

TEST(GeometryTest, PolylineBasics) {
  const Geometry g = Geometry::MakePolyline({{0, 0}, {1, 2}, {3, 1}});
  EXPECT_EQ(g.type(), GeometryType::kPolyline);
  EXPECT_EQ(g.num_points(), 3u);
  EXPECT_EQ(g.Mbr(), Rect(0, 0, 3, 2));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  // Open chain: 2 segments, no closing edge.
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].a, (Point{0, 0}));
  EXPECT_EQ(segs[1].b, (Point{3, 1}));
}

TEST(GeometryTest, PolygonWithHoleBasics) {
  const Geometry g = Geometry::MakePolygon(
      {{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
       {{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  EXPECT_EQ(g.num_points(), 8u);
  EXPECT_EQ(g.num_holes(), 1u);
  EXPECT_EQ(g.Mbr(), Rect(0, 0, 10, 10));
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  // Rings are implicitly closed: 4 + 4 edges.
  EXPECT_EQ(segs.size(), 8u);
}

TEST(GeometryTest, SerializationRoundTripPolyline) {
  const Geometry g = Geometry::MakePolyline({{0.5, -1.25}, {3e10, 4e-10}});
  std::string buf;
  g.AppendTo(&buf);
  EXPECT_EQ(buf.size(), g.SerializedSize());
  size_t consumed = 0;
  auto parsed = Geometry::Parse(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(*parsed, g);
  EXPECT_EQ(parsed->Mbr(), g.Mbr());
}

TEST(GeometryTest, ParseRejectsTruncation) {
  const Geometry g = Geometry::MakePolygon(
      {{{0, 0}, {1, 0}, {1, 1}}, {{0.2, 0.2}, {0.4, 0.2}, {0.3, 0.4}}});
  std::string buf;
  g.AppendTo(&buf);
  for (const size_t cut : {size_t{0}, size_t{3}, buf.size() / 2,
                           buf.size() - 1}) {
    size_t consumed = 0;
    auto parsed = Geometry::Parse(
        reinterpret_cast<const uint8_t*>(buf.data()), cut, &consumed);
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(GeometryTest, ParseRejectsBadTypeTag) {
  std::string buf;
  Geometry::MakePoint({1, 2}).AppendTo(&buf);
  buf[0] = 9;  // Invalid tag.
  size_t consumed = 0;
  auto parsed = Geometry::Parse(
      reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
  EXPECT_FALSE(parsed.ok());
}

TEST(GeometryTest, WktRendering) {
  EXPECT_EQ(Geometry::MakePoint({1, 2}).ToWkt().substr(0, 6), "POINT ");
  const std::string line =
      Geometry::MakePolyline({{0, 0}, {1, 1}}).ToWkt();
  EXPECT_EQ(line.substr(0, 11), "LINESTRING ");
  const std::string poly =
      Geometry::MakePolygon({{{0, 0}, {1, 0}, {0, 1}}}).ToWkt();
  EXPECT_EQ(poly.substr(0, 8), "POLYGON ");
  // Polygon rings render with the closing vertex repeated.
  EXPECT_NE(poly.find("0.000000 0.000000)"), std::string::npos);
}

class GeometryRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryRoundTripTest, RandomGeometriesSurviveSerialization) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Geometry g = Geometry::MakePoint({0, 0});
    const int kind = static_cast<int>(rng.Uniform(3));
    auto rand_pt = [&]() {
      return Point{rng.UniformDouble(-100, 100), rng.UniformDouble(-100, 100)};
    };
    if (kind == 0) {
      g = Geometry::MakePoint(rand_pt());
    } else if (kind == 1) {
      std::vector<Point> pts;
      const int n = 2 + static_cast<int>(rng.Uniform(30));
      for (int i = 0; i < n; ++i) pts.push_back(rand_pt());
      g = Geometry::MakePolyline(std::move(pts));
    } else {
      std::vector<std::vector<Point>> rings;
      const int nrings = 1 + static_cast<int>(rng.Uniform(3));
      for (int r = 0; r < nrings; ++r) {
        std::vector<Point> ring;
        const int n = 3 + static_cast<int>(rng.Uniform(20));
        for (int i = 0; i < n; ++i) ring.push_back(rand_pt());
        rings.push_back(std::move(ring));
      }
      g = Geometry::MakePolygon(std::move(rings));
    }
    std::string buf;
    g.AppendTo(&buf);
    ASSERT_EQ(buf.size(), g.SerializedSize());
    size_t consumed = 0;
    auto parsed = Geometry::Parse(
        reinterpret_cast<const uint8_t*>(buf.data()), buf.size(), &consumed);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(consumed, buf.size());
    EXPECT_EQ(*parsed, g);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryRoundTripTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace pbsm
