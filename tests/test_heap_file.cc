#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/tuple.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(HeapFileTest, AppendFetchRoundTrip) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap,
                            HeapFile::Create(env.pool(), "rel"));
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid a, heap.Append("hello"));
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid b, heap.Append("world!"));
  EXPECT_EQ(heap.num_records(), 2u);
  std::string out;
  PBSM_ASSERT_OK(heap.Fetch(a, &out));
  EXPECT_EQ(out, "hello");
  PBSM_ASSERT_OK(heap.Fetch(b, &out));
  EXPECT_EQ(out, "world!");
}

TEST(HeapFileTest, OidEncodingRoundTrips) {
  const Oid oid{123456, 789};
  EXPECT_EQ(Oid::Decode(oid.Encode()), oid);
  // Encoding preserves physical order.
  const Oid early{1, 500}, late{2, 0};
  EXPECT_LT(early.Encode(), late.Encode());
  const Oid s5{1, 5}, s6{1, 6};
  EXPECT_LT(s5.Encode(), s6.Encode());
}

TEST(HeapFileTest, SpillsAcrossPages) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  const std::string record(1000, 'x');
  std::vector<Oid> oids;
  for (int i = 0; i < 50; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(record));
    oids.push_back(oid);
  }
  EXPECT_GT(heap.num_pages(), 1u);
  // Every record still fetchable.
  std::string out;
  for (const Oid& oid : oids) {
    PBSM_ASSERT_OK(heap.Fetch(oid, &out));
    EXPECT_EQ(out.size(), record.size());
  }
}

TEST(HeapFileTest, RejectsOversizedRecord) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  const std::string record(kPageSize, 'x');
  auto result = heap.Append(record);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Max-size record fits exactly.
  const std::string max_record(HeapFile::MaxRecordSize(), 'y');
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(max_record));
  std::string out;
  PBSM_ASSERT_OK(heap.Fetch(oid, &out));
  EXPECT_EQ(out, max_record);
}

TEST(HeapFileTest, FetchBadOidFails) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append("x"));
  (void)oid;
  std::string out;
  EXPECT_EQ(heap.Fetch(Oid{5, 0}, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(heap.Fetch(Oid{0, 9}, &out).code(), StatusCode::kOutOfRange);
}

TEST(HeapFileTest, ScanVisitsAllRecordsInPhysicalOrder) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  Rng rng(3);
  std::vector<std::string> records;
  for (int i = 0; i < 200; ++i) {
    records.push_back(std::string(10 + rng.Uniform(500), 'a' + i % 26));
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(records.back()));
    (void)oid;
  }
  size_t idx = 0;
  uint64_t last_oid = 0;
  PBSM_ASSERT_OK(heap.Scan([&](Oid oid, const char* data,
                               size_t size) -> Status {
    EXPECT_EQ(std::string(data, size), records[idx]);
    if (idx > 0) {
      EXPECT_GT(oid.Encode(), last_oid);
    }
    last_oid = oid.Encode();
    ++idx;
    return Status::OK();
  }));
  EXPECT_EQ(idx, records.size());
}

TEST(HeapFileTest, ScanAbortsOnError) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  for (int i = 0; i < 10; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append("rec"));
    (void)oid;
  }
  int visited = 0;
  const Status s = heap.Scan([&](Oid, const char*, size_t) -> Status {
    if (++visited == 3) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(visited, 3);
}

TEST(TupleTest, SerializeParseRoundTrip) {
  Tuple t;
  t.id = 42;
  t.feature_class = 7;
  t.name = "State Highway 151";
  t.geometry = Geometry::MakePolyline({{1, 2}, {3, 4}, {5, 6}});
  const std::string bytes = t.Serialize();
  PBSM_ASSERT_OK_AND_ASSIGN(const Tuple parsed,
                            Tuple::Parse(bytes.data(), bytes.size()));
  EXPECT_EQ(parsed.id, t.id);
  EXPECT_EQ(parsed.feature_class, t.feature_class);
  EXPECT_EQ(parsed.name, t.name);
  EXPECT_EQ(parsed.geometry, t.geometry);
}

TEST(TupleTest, ParseRejectsTruncation) {
  Tuple t;
  t.id = 1;
  t.name = "x";
  t.geometry = Geometry::MakePoint({0, 0});
  const std::string bytes = t.Serialize();
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(Tuple::Parse(bytes.data(), cut).ok()) << "cut=" << cut;
  }
}

TEST(TupleTest, RoundTripsThroughHeapFile) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "r"));
  Tuple t;
  t.id = 9;
  t.name = "Lake Mendota";
  t.geometry = Geometry::MakePolygon({{{0, 0}, {2, 0}, {1, 2}}});
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(t.Serialize()));
  std::string out;
  PBSM_ASSERT_OK(heap.Fetch(oid, &out));
  PBSM_ASSERT_OK_AND_ASSIGN(const Tuple parsed,
                            Tuple::Parse(out.data(), out.size()));
  EXPECT_EQ(parsed.name, "Lake Mendota");
  EXPECT_EQ(parsed.geometry, t.geometry);
}

}  // namespace
}  // namespace pbsm
