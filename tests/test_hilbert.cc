#include "geom/hilbert.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace pbsm {
namespace {

TEST(HilbertTest, Order1IsTheBasicCurve) {
  // The order-1 Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
  EXPECT_EQ(HilbertD2XY(1, 0, 0), 0u);
  EXPECT_EQ(HilbertD2XY(1, 0, 1), 1u);
  EXPECT_EQ(HilbertD2XY(1, 1, 1), 2u);
  EXPECT_EQ(HilbertD2XY(1, 1, 0), 3u);
}

TEST(HilbertTest, IsBijectiveOnSmallGrids) {
  for (uint32_t order = 1; order <= 5; ++order) {
    const uint32_t side = 1u << order;
    std::set<uint64_t> seen;
    for (uint32_t x = 0; x < side; ++x) {
      for (uint32_t y = 0; y < side; ++y) {
        const uint64_t d = HilbertD2XY(order, x, y);
        EXPECT_LT(d, static_cast<uint64_t>(side) * side);
        EXPECT_TRUE(seen.insert(d).second)
            << "duplicate key at order " << order;
      }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(side) * side);
  }
}

TEST(HilbertTest, ConsecutiveKeysAreGridNeighbors) {
  // The defining property of the Hilbert curve: walking the curve moves one
  // grid cell at a time.
  const uint32_t order = 4;
  const uint32_t side = 1u << order;
  std::vector<std::pair<uint32_t, uint32_t>> by_key(side * side);
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      by_key[HilbertD2XY(order, x, y)] = {x, y};
    }
  }
  for (size_t d = 1; d < by_key.size(); ++d) {
    const auto [x0, y0] = by_key[d - 1];
    const auto [x1, y1] = by_key[d];
    const uint32_t manhattan = (x0 > x1 ? x0 - x1 : x1 - x0) +
                               (y0 > y1 ? y0 - y1 : y1 - y0);
    EXPECT_EQ(manhattan, 1u) << "jump at d=" << d;
  }
}

TEST(ZOrderTest, InterleavesBits) {
  EXPECT_EQ(ZOrderKey(4, 0, 0), 0u);
  EXPECT_EQ(ZOrderKey(4, 1, 0), 1u);
  EXPECT_EQ(ZOrderKey(4, 0, 1), 2u);
  EXPECT_EQ(ZOrderKey(4, 1, 1), 3u);
  EXPECT_EQ(ZOrderKey(4, 2, 0), 4u);
  EXPECT_EQ(ZOrderKey(4, 3, 3), 15u);
}

TEST(ZOrderTest, IsBijectiveOnSmallGrid) {
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      EXPECT_TRUE(seen.insert(ZOrderKey(4, x, y)).second);
    }
  }
}

TEST(SpaceFillingCurveTest, MapsUniverseCorners) {
  const Rect universe(0, 0, 100, 100);
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert, universe,
                                8);
  // Corner cells map without crashing and differ from each other.
  const uint64_t k00 = curve.Key(Point{0, 0});
  const uint64_t k11 = curve.Key(Point{100, 100});
  const uint64_t kmid = curve.Key(Point{50, 50});
  EXPECT_NE(k00, k11);
  EXPECT_NE(k00, kmid);
  // Out-of-universe points clamp to border cells.
  EXPECT_EQ(curve.Key(Point{-10, -10}), k00);
}

TEST(SpaceFillingCurveTest, PreservesLocalityBetterThanRowMajor) {
  // Average key distance of adjacent points should be small relative to the
  // key space for a space-filling curve.
  const Rect universe(0, 0, 1, 1);
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kHilbert, universe,
                                10);
  Rng rng(99);
  double total_gap = 0;
  const int kSamples = 1000;
  for (int i = 0; i < kSamples; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    const Point q{p.x + 0.001, p.y};  // Immediate spatial neighbor.
    const uint64_t a = curve.Key(p);
    const uint64_t b = curve.Key(Point{std::min(q.x, 1.0), q.y});
    total_gap += static_cast<double>(a > b ? a - b : b - a);
  }
  const double key_space = static_cast<double>(1u << 10) * (1u << 10);
  EXPECT_LT(total_gap / kSamples, key_space * 0.05);
}

TEST(SpaceFillingCurveTest, RectKeyUsesCenter) {
  const Rect universe(0, 0, 100, 100);
  const SpaceFillingCurve curve(SpaceFillingCurve::Kind::kZOrder, universe);
  EXPECT_EQ(curve.Key(Rect(10, 10, 30, 30)), curve.Key(Point{20, 20}));
}

}  // namespace
}  // namespace pbsm
