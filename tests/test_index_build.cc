#include "core/index_build.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

std::set<uint64_t> Query(const RStarTree& tree, const Rect& window) {
  std::vector<uint64_t> hits;
  EXPECT_TRUE(tree.WindowQuery(window, &hits).ok());
  return std::set<uint64_t>(hits.begin(), hits.end());
}

class IndexBuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(512 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    tuples_ = gen.GenerateRoads(3000);
  }

  std::unique_ptr<StorageEnv> env_;
  std::vector<Tuple> tuples_;
};

TEST_F(IndexBuildTest, ExtractKeyPointersMatchesHeap) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env_->pool(), nullptr, "r", tuples_));
  PBSM_ASSERT_OK_AND_ASSIGN(const std::vector<RTreeEntry> entries,
                            ExtractKeyPointers(rel.heap));
  ASSERT_EQ(entries.size(), tuples_.size());
  // Scan order == physical order; MBRs must match the tuples'.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].mbr, tuples_[i].geometry.Mbr());
  }
}

TEST_F(IndexBuildTest, UnclusteredAndClusteredBuildsAnswerIdentically) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation plain,
      LoadRelation(env_->pool(), nullptr, "plain", tuples_, false));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation clustered,
      LoadRelation(env_->pool(), nullptr, "clustered", tuples_, true));

  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree idx_plain,
      BuildIndexByBulkLoad(env_->pool(), plain.AsInput(), "p.rtree", 0.75));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree idx_clustered,
      BuildIndexByBulkLoad(env_->pool(), clustered.AsInput(), "c.rtree",
                           0.75));
  EXPECT_EQ(idx_plain.num_entries(), idx_clustered.num_entries());

  // Queries return the same *tuples*; OIDs differ (different physical
  // placement), so compare via fetched tuple ids.
  Rng rng(1);
  for (int q = 0; q < 20; ++q) {
    const Rect& u = plain.info.universe;
    const double x = rng.UniformDouble(u.xlo, u.xhi);
    const double y = rng.UniformDouble(u.ylo, u.yhi);
    const Rect window(x, y, x + u.width() / 10, y + u.height() / 10);
    auto ids_of = [&](const RStarTree& tree, const StoredRelation& rel) {
      std::set<uint64_t> ids;
      std::string rec;
      for (const uint64_t oid : Query(tree, window)) {
        EXPECT_TRUE(rel.heap.Fetch(Oid::Decode(oid), &rec).ok());
        auto t = Tuple::Parse(rec.data(), rec.size());
        EXPECT_TRUE(t.ok());
        if (t.ok()) ids.insert(t->id);
      }
      return ids;
    };
    EXPECT_EQ(ids_of(idx_plain, plain), ids_of(idx_clustered, clustered));
  }
}

TEST_F(IndexBuildTest, TinyBudgetSpillsButBuildsCorrectly) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env_->pool(), nullptr, "r", tuples_));
  // 8 KB budget: the keyed-entry sorter must spill many runs.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree tiny,
      BuildIndexByBulkLoad(env_->pool(), rel.AsInput(), "tiny.rtree", 0.75,
                           /*memory_budget=*/8 << 10));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree big,
      BuildIndexByBulkLoad(env_->pool(), rel.AsInput(), "big.rtree", 0.75,
                           /*memory_budget=*/64 << 20));
  EXPECT_EQ(tiny.num_entries(), big.num_entries());
  Rng rng(2);
  for (int q = 0; q < 20; ++q) {
    const Rect& u = rel.info.universe;
    const double x = rng.UniformDouble(u.xlo, u.xhi);
    const double y = rng.UniformDouble(u.ylo, u.yhi);
    const Rect window(x, y, x + 0.4, y + 0.4);
    EXPECT_EQ(Query(tiny, window), Query(big, window));
  }
}

TEST_F(IndexBuildTest, InsertBuiltMatchesBulkLoaded) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env_->pool(), nullptr, "r", tuples_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree bulk,
      BuildIndexByBulkLoad(env_->pool(), rel.AsInput(), "b.rtree", 0.75));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree inserted,
      BuildIndexByInserts(env_->pool(), rel.AsInput(), "i.rtree"));
  EXPECT_EQ(bulk.num_entries(), inserted.num_entries());
  Rng rng(3);
  for (int q = 0; q < 30; ++q) {
    const Rect& u = rel.info.universe;
    const double x = rng.UniformDouble(u.xlo, u.xhi);
    const double y = rng.UniformDouble(u.ylo, u.yhi);
    const Rect window(x, y, x + 0.3, y + 0.3);
    EXPECT_EQ(Query(bulk, window), Query(inserted, window));
  }
}

TEST_F(IndexBuildTest, EmptyRelation) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env_->pool(), nullptr, "empty", std::vector<Tuple>{}));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree tree,
      BuildIndexByBulkLoad(env_->pool(), rel.AsInput(), "e.rtree", 0.75));
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_TRUE(Query(tree, Rect(-180, -90, 180, 90)).empty());
}

TEST(HeapCursorTest, MatchesScan) {
  StorageEnv env(64 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "h"));
  std::vector<std::string> records;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    records.push_back(std::string(5 + rng.Uniform(300), 'a' + i % 26));
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(records.back()));
    (void)oid;
  }
  HeapFile::Cursor cursor = heap.NewCursor();
  Oid oid;
  std::string record;
  size_t i = 0;
  while (true) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has, cursor.Next(&oid, &record));
    if (!has) break;
    ASSERT_LT(i, records.size());
    EXPECT_EQ(record, records[i]);
    ++i;
  }
  EXPECT_EQ(i, records.size());
}

TEST(TupleMerTest, StoredMerRoundTrips) {
  Tuple t;
  t.id = 5;
  t.name = "park";
  t.geometry = Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
  t.mer = Rect(1, 1, 9, 9);
  const std::string bytes = t.Serialize();
  PBSM_ASSERT_OK_AND_ASSIGN(const Tuple parsed,
                            Tuple::Parse(bytes.data(), bytes.size()));
  EXPECT_EQ(parsed.mer, t.mer);

  // Tuples without a MER stay MER-free and serialize smaller.
  Tuple plain = t;
  plain.mer = Rect();
  const std::string plain_bytes = plain.Serialize();
  EXPECT_LT(plain_bytes.size(), bytes.size());
  PBSM_ASSERT_OK_AND_ASSIGN(const Tuple parsed_plain,
                            Tuple::Parse(plain_bytes.data(),
                                         plain_bytes.size()));
  EXPECT_TRUE(parsed_plain.mer.empty());
}

TEST(LoaderMerTest, PrecomputesMersForPolygons) {
  StorageEnv env(128 * kPageSize);
  std::vector<Tuple> tuples;
  Tuple poly;
  poly.id = 1;
  poly.geometry =
      Geometry::MakePolygon({{{0, 0}, {4, 0}, {4, 4}, {0, 4}}});
  tuples.push_back(poly);
  Tuple line;
  line.id = 2;
  line.geometry = Geometry::MakePolyline({{0, 0}, {1, 1}});
  tuples.push_back(line);

  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env.pool(), nullptr, "m", tuples, false,
                   /*precompute_mers=*/true));
  int with_mer = 0, without = 0;
  PBSM_ASSERT_OK(rel.heap.Scan([&](Oid, const char* d, size_t n) -> Status {
    PBSM_ASSIGN_OR_RETURN(const Tuple t, Tuple::Parse(d, n));
    if (t.mer.empty()) {
      ++without;
    } else {
      ++with_mer;
      EXPECT_EQ(t.geometry.type(), GeometryType::kPolygon);
    }
    return Status::OK();
  }));
  EXPECT_EQ(with_mer, 1);
  EXPECT_EQ(without, 1);
}

}  // namespace
}  // namespace pbsm
