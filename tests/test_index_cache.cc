#include "service/index_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

constexpr double kFill = 0.75;

class IndexCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 7;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(300);
    hydro_ = gen.GenerateHydrography(150);
    rail_ = gen.GenerateRail(80);
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
  std::vector<Tuple> rail_;
};

TEST_F(IndexCacheTest, MissBuildsThenHitReuses) {
  StorageEnv env(1024 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  IndexCache cache(env.pool(), {});
  // The hit/miss counters are process-global (shared registry), so tests
  // assert on deltas.
  const uint64_t hits0 = cache.hits(), misses0 = cache.misses();

  EXPECT_FALSE(cache.Contains(road.AsInput(), kFill));
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef first,
                            cache.GetOrBuild(road.AsInput(), kFill));
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(cache.Contains(road.AsInput(), kFill));
  EXPECT_EQ(cache.misses() - misses0, 1u);

  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef second,
                            cache.GetOrBuild(road.AsInput(), kFill));
  EXPECT_EQ(first.get(), second.get());  // Same tree, not a rebuild.
  EXPECT_EQ(cache.hits() - hits0, 1u);
  EXPECT_EQ(cache.misses() - misses0, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(IndexCacheTest, DifferentFillFactorIsADifferentEntry) {
  StorageEnv env(1024 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  IndexCache cache(env.pool(), {});
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef a,
                            cache.GetOrBuild(road.AsInput(), 0.75));
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef b,
                            cache.GetOrBuild(road.AsInput(), 0.95));
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(IndexCacheTest, LruEvictionAtCapacity) {
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto hydro, LoadRelation(env.pool(), nullptr, "hydro", hydro_));
  IndexCache::Config config;
  config.capacity = 1;
  config.num_shards = 1;  // One shard so the capacity bound is exact.
  IndexCache cache(env.pool(), config);
  const uint64_t evictions0 = cache.evictions();

  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef road_tree,
                            cache.GetOrBuild(road.AsInput(), kFill));
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef hydro_tree,
                            cache.GetOrBuild(hydro.AsInput(), kFill));
  EXPECT_EQ(cache.evictions() - evictions0, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Contains(road.AsInput(), kFill));
  EXPECT_TRUE(cache.Contains(hydro.AsInput(), kFill));

  // The evicted tree stays alive for its holder (pinning contract): its
  // index file is still present in the pool until the last ref dies.
  ASSERT_NE(road_tree, nullptr);
  EXPECT_NE(road_tree->file(), kInvalidFileId);
}

TEST_F(IndexCacheTest, InvalidateDatasetRemovesItsEntries) {
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto rail, LoadRelation(env.pool(), nullptr, "rail", rail_));
  IndexCache cache(env.pool(), {});
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef a,
                            cache.GetOrBuild(road.AsInput(), kFill));
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef b,
                            cache.GetOrBuild(rail.AsInput(), kFill));
  a.reset();
  b.reset();
  EXPECT_EQ(cache.size(), 2u);

  cache.InvalidateDataset("road");
  EXPECT_FALSE(cache.Contains(road.AsInput(), kFill));
  EXPECT_TRUE(cache.Contains(rail.AsInput(), kFill));
  EXPECT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(IndexCacheTest, DroppingTheHeapFileInvalidatesViaListener) {
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  IndexCache cache(env.pool(), {});
  {
    PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef tree,
                              cache.GetOrBuild(road.AsInput(), kFill));
  }
  EXPECT_TRUE(cache.Contains(road.AsInput(), kFill));

  // Storage-level drop of the dataset's heap file: the cache's registered
  // drop listener must invalidate the tree without any explicit call.
  PBSM_ASSERT_OK(env.pool()->DropFile(road.info.file));
  EXPECT_FALSE(cache.Contains(road.AsInput(), kFill));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(IndexCacheTest, ConcurrentRequestsBuildExactlyOnce) {
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  IndexCache cache(env.pool(), {});
  const uint64_t misses0 = cache.misses();

  constexpr int kThreads = 8;
  std::vector<IndexCache::TreeRef> trees(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      auto tree = cache.GetOrBuild(road.AsInput(), kFill);
      if (tree.ok()) trees[i] = std::move(tree).value();
    });
  }
  for (std::thread& t : threads) t.join();

  // Thundering-herd protection: one bulk load, everyone shares it.
  EXPECT_EQ(cache.misses() - misses0, 1u);
  ASSERT_NE(trees[0], nullptr);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(trees[i].get(), trees[0].get());
  }
}

TEST_F(IndexCacheTest, NodeLayoutVersionsTheCacheKey) {
  // A tree built under one PBSM_RTREE_LAYOUT setting must never be served
  // to a request expecting a different layout: the layout tag is part of
  // the cache key, so flipping the knob reads as a miss and a rebuild —
  // the same mechanism that retires stale ribbon formats when the tag's
  // version suffix ("q16.v1") is bumped.
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  IndexCache cache(env.pool(), {});
  const uint64_t misses0 = cache.misses();

  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "quantized", 1), 0);
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef quantized,
                            cache.GetOrBuild(road.AsInput(), kFill));
  EXPECT_EQ(quantized->layout(), NodeLayout::kSoaQuantized);
  EXPECT_TRUE(cache.Contains(road.AsInput(), kFill));
  EXPECT_EQ(cache.misses() - misses0, 1u);

  // Same dataset, same fill factor, different layout: a distinct entry.
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "aos", 1), 0);
  EXPECT_FALSE(cache.Contains(road.AsInput(), kFill));
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef aos,
                            cache.GetOrBuild(road.AsInput(), kFill));
  EXPECT_EQ(aos->layout(), NodeLayout::kAos);
  EXPECT_EQ(aos->ribbon(aos->root_page()), nullptr);
  EXPECT_NE(aos.get(), quantized.get());
  EXPECT_EQ(cache.misses() - misses0, 2u);
  EXPECT_EQ(cache.size(), 2u);

  // Flipping back hits the original quantized entry — no rebuild.
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "quantized", 1), 0);
  const uint64_t hits0 = cache.hits();
  PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef again,
                            cache.GetOrBuild(road.AsInput(), kFill));
  EXPECT_EQ(again.get(), quantized.get());
  EXPECT_EQ(cache.hits() - hits0, 1u);
  ASSERT_EQ(unsetenv("PBSM_RTREE_LAYOUT"), 0);
}

TEST_F(IndexCacheTest, NoPinnedFramesAfterTeardown) {
  StorageEnv env(2048 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      auto road, LoadRelation(env.pool(), nullptr, "road", roads_));
  {
    IndexCache cache(env.pool(), {});
    PBSM_ASSERT_OK_AND_ASSIGN(IndexCache::TreeRef tree,
                              cache.GetOrBuild(road.AsInput(), kFill));
    EXPECT_NE(tree, nullptr);
  }
  EXPECT_EQ(env.pool()->pinned_frames(), 0u);
}

}  // namespace
}  // namespace pbsm
