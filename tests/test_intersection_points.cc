#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "geom/predicates.h"
#include "geom/segment.h"

namespace pbsm {
namespace {

TEST(SegmentIntersectionPointTest, ProperCrossing) {
  Point p;
  ASSERT_TRUE(SegmentIntersectionPoint({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}},
                                       &p));
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(SegmentIntersectionPointTest, EndpointTouch) {
  Point p;
  ASSERT_TRUE(SegmentIntersectionPoint({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}},
                                       &p));
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(SegmentIntersectionPointTest, CollinearOverlapGivesWitness) {
  Point p;
  ASSERT_TRUE(SegmentIntersectionPoint({{0, 0}, {4, 0}}, {{2, 0}, {6, 0}},
                                       &p));
  // The witness must lie on both segments.
  EXPECT_TRUE(PointOnSegment(p, {{0, 0}, {4, 0}}));
  EXPECT_TRUE(PointOnSegment(p, {{2, 0}, {6, 0}}));
}

TEST(SegmentIntersectionPointTest, DisjointReturnsFalse) {
  Point p;
  EXPECT_FALSE(
      SegmentIntersectionPoint({{0, 0}, {1, 0}}, {{0, 1}, {1, 1}}, &p));
}

class IntersectionPointPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntersectionPointPropertyTest, WitnessLiesOnBothSegments) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 500; ++iter) {
    auto seg = [&]() {
      const Point a{rng.UniformDouble(0, 10), rng.UniformDouble(0, 10)};
      return Segment{a, {a.x + rng.UniformDouble(-4, 4),
                         a.y + rng.UniformDouble(-4, 4)}};
    };
    const Segment s1 = seg();
    const Segment s2 = seg();
    Point p;
    const bool has = SegmentIntersectionPoint(s1, s2, &p);
    EXPECT_EQ(has, SegmentsIntersect(s1, s2));
    if (has) {
      // Allow floating-point slack: the witness must be within epsilon of
      // both segments (distance bounded via the MBR + orientation checks).
      const auto near_segment = [&](const Segment& s) {
        const double eps = 1e-9;
        const Rect grown(s.Mbr().xlo - eps, s.Mbr().ylo - eps,
                         s.Mbr().xhi + eps, s.Mbr().yhi + eps);
        if (!grown.Contains(p)) return false;
        // Cross product magnitude relative to segment length.
        const double cross = (s.b.x - s.a.x) * (p.y - s.a.y) -
                             (s.b.y - s.a.y) * (p.x - s.a.x);
        const double len2 = (s.b.x - s.a.x) * (s.b.x - s.a.x) +
                            (s.b.y - s.a.y) * (s.b.y - s.a.y);
        return cross * cross <= 1e-18 * (len2 + 1.0) ||
               len2 == 0.0;
      };
      EXPECT_TRUE(near_segment(s1)) << "iter " << iter;
      EXPECT_TRUE(near_segment(s2)) << "iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectionPointPropertyTest,
                         ::testing::Values(61, 62, 63));

TEST(BoundaryIntersectionPointsTest, CrossingPolylines) {
  const Geometry a = Geometry::MakePolyline({{0, 1}, {10, 1}});
  const Geometry b =
      Geometry::MakePolyline({{2, 0}, {2, 2}, {5, 0}, {5, 2}});
  std::vector<Point> pts;
  BoundaryIntersectionPoints(a, b, 10, &pts);
  ASSERT_EQ(pts.size(), 3u);  // x=2, somewhere on (2,2)-(5,0), x=5.
  for (const Point& p : pts) {
    EXPECT_NEAR(p.y, 1.0, 1e-9);
  }
}

TEST(BoundaryIntersectionPointsTest, MaxPointsCapsOutput) {
  const Geometry a = Geometry::MakePolyline({{0, 1}, {10, 1}});
  const Geometry b =
      Geometry::MakePolyline({{2, 0}, {2, 2}, {5, 0}, {5, 2}});
  std::vector<Point> pts;
  BoundaryIntersectionPoints(a, b, 1, &pts);
  EXPECT_EQ(pts.size(), 1u);
  pts.clear();
  BoundaryIntersectionPoints(a, b, 0, &pts);
  EXPECT_TRUE(pts.empty());
}

TEST(BoundaryIntersectionPointsTest, DisjointYieldsNothing) {
  const Geometry a = Geometry::MakePolyline({{0, 0}, {1, 0}});
  const Geometry b = Geometry::MakePolyline({{5, 5}, {6, 5}});
  std::vector<Point> pts;
  BoundaryIntersectionPoints(a, b, 10, &pts);
  EXPECT_TRUE(pts.empty());
}

TEST(BoundaryIntersectionPointsTest, PolygonBoundaries) {
  const Geometry square =
      Geometry::MakePolygon({{{0, 0}, {4, 0}, {4, 4}, {0, 4}}});
  const Geometry line = Geometry::MakePolyline({{-1, 2}, {5, 2}});
  std::vector<Point> pts;
  BoundaryIntersectionPoints(square, line, 10, &pts);
  ASSERT_EQ(pts.size(), 2u);  // Enters at x=0, exits at x=4.
}

}  // namespace
}  // namespace pbsm
