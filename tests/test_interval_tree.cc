#include "core/interval_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace pbsm {
namespace {

std::vector<uint64_t> Query(const IntervalTree& tree, double lo, double hi) {
  std::vector<uint64_t> out;
  tree.QueryOverlaps(lo, hi, [&](uint64_t p) { out.push_back(p); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IntervalTreeTest, EmptyTreeYieldsNothing) {
  IntervalTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(Query(tree, 0, 100).empty());
}

TEST(IntervalTreeTest, BasicOverlaps) {
  IntervalTree tree;
  tree.Insert(0, 10, 1);
  tree.Insert(5, 15, 2);
  tree.Insert(20, 30, 3);
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(Query(tree, 7, 8), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Query(tree, 12, 22), (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(Query(tree, 16, 19), (std::vector<uint64_t>{}));
  // Closed semantics: touching counts.
  EXPECT_EQ(Query(tree, 10, 10), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Query(tree, 30, 40), (std::vector<uint64_t>{3}));
}

TEST(IntervalTreeTest, RemoveByHandle) {
  IntervalTree tree;
  const uint64_t h1 = tree.Insert(0, 10, 1);
  const uint64_t h2 = tree.Insert(5, 15, 2);
  EXPECT_TRUE(tree.Remove(h1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(Query(tree, 7, 8), (std::vector<uint64_t>{2}));
  EXPECT_FALSE(tree.Remove(h1));  // Double remove.
  EXPECT_TRUE(tree.Remove(h2));
  EXPECT_TRUE(tree.empty());
}

TEST(IntervalTreeTest, DuplicateIntervalsAreDistinct) {
  IntervalTree tree;
  const uint64_t h1 = tree.Insert(0, 10, 1);
  const uint64_t h2 = tree.Insert(0, 10, 2);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(Query(tree, 5, 5), (std::vector<uint64_t>{1, 2}));
  EXPECT_TRUE(tree.Remove(h1));
  EXPECT_EQ(Query(tree, 5, 5), (std::vector<uint64_t>{2}));
}

TEST(IntervalTreeTest, ClearResets) {
  IntervalTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i + 5, i);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(Query(tree, 0, 1000).empty());
  tree.Insert(1, 2, 9);
  EXPECT_EQ(Query(tree, 0, 10), (std::vector<uint64_t>{9}));
}

class IntervalTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalTreePropertyTest, MatchesNaiveUnderChurn) {
  Rng rng(GetParam());
  IntervalTree tree;
  struct Naive {
    double lo, hi;
    uint64_t payload;
    uint64_t handle;
  };
  std::vector<Naive> naive;
  uint64_t next_payload = 0;

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0 || naive.empty()) {
      const double lo = rng.UniformDouble(0, 100);
      const double hi = lo + rng.UniformDouble(0, 20);
      const uint64_t payload = next_payload++;
      const uint64_t handle = tree.Insert(lo, hi, payload);
      naive.push_back({lo, hi, payload, handle});
    } else if (op == 1) {
      const size_t idx = rng.Uniform(naive.size());
      EXPECT_TRUE(tree.Remove(naive[idx].handle));
      naive.erase(naive.begin() + static_cast<long>(idx));
    } else {
      const double lo = rng.UniformDouble(0, 100);
      const double hi = lo + rng.UniformDouble(0, 30);
      std::vector<uint64_t> expected;
      for (const Naive& n : naive) {
        if (n.lo <= hi && lo <= n.hi) expected.push_back(n.payload);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(Query(tree, lo, hi), expected) << "step " << step;
    }
    EXPECT_EQ(tree.size(), naive.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalTreePropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace pbsm
