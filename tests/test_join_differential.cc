// Differential join correctness: every SpatialJoin method, across a seeded
// randomized sweep of datasets, tile counts, thread counts and predicates,
// must produce exactly the pair set of a brute-force O(n^2) oracle that
// shares nothing with the join machinery beyond the geometry kernels.
//
// This harness (tests/join_test_harness.h) is also what the fault-injection
// tests replay under injected I/O errors, so keeping it oracle-exact here is
// what gives the fault suite its "bit-identical results" baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "datagen/tiger_gen.h"
#include "service/join_router.h"
#include "service/shard_manager.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

struct SweepCase {
  uint64_t dataset_seed;
  uint64_t r_count;
  uint64_t s_count;
  uint32_t num_tiles;
  uint32_t num_threads;
  SpatialPredicate pred;
  bool clustered;

  std::string Describe() const {
    return "seed=" + std::to_string(dataset_seed) +
           " r=" + std::to_string(r_count) + " s=" + std::to_string(s_count) +
           " tiles=" + std::to_string(num_tiles) +
           " threads=" + std::to_string(num_threads) +
           " pred=" + (pred == SpatialPredicate::kIntersects ? "intersects"
                                                             : "contains") +
           (clustered ? " clustered" : "");
  }
};

/// Draws the sweep from one fixed seed so every run tests the identical
/// configurations; bump kSweepSeed deliberately to rotate the corpus.
std::vector<SweepCase> MakeSweep() {
  constexpr uint64_t kSweepSeed = 20260806;
  Rng rng(kSweepSeed);
  std::vector<SweepCase> cases;
  for (int i = 0; i < 6; ++i) {
    SweepCase c;
    c.dataset_seed = rng.Next();
    c.r_count = 80 + rng.Uniform(220);   // 80..299 tuples.
    c.s_count = 40 + rng.Uniform(160);   // 40..199 tuples.
    c.num_tiles = 16u << rng.Uniform(5); // 16..256.
    c.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));  // 1..4.
    c.pred = rng.Bernoulli(0.5) ? SpatialPredicate::kIntersects
                                : SpatialPredicate::kContains;
    c.clustered = rng.Bernoulli(0.3);
    cases.push_back(c);
  }
  return cases;
}

class JoinDifferentialTest : public ::testing::Test {};

TEST_F(JoinDifferentialTest, AllMethodsMatchBruteForceOracleAcrossSweep) {
  for (const SweepCase& c : MakeSweep()) {
    SCOPED_TRACE(c.Describe());
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    // An eighth of the default universe: at sweep-sized cardinalities the
    // full Wisconsin extent yields near-empty joins, which would make the
    // differential comparison vacuous.
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    std::vector<Tuple> roads = gen.GenerateRoads(c.r_count);
    std::vector<Tuple> hydro = gen.GenerateHydrography(c.s_count);

    const IdPairSet expected = BruteForceJoin(roads, hydro, c.pred);

    // Every method must match the oracle under the scalar filter kernel AND
    // the vector kernel (kAvx2 resolves to scalar on hosts without AVX2, so
    // the second pass is never vacuous — just redundant there).
    for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
      SCOPED_TRACE(simd == SimdMode::kScalar ? "simd=scalar" : "simd=avx2");
      for (const JoinMethod method : AllJoinMethods()) {
        SCOPED_TRACE(JoinMethodName(method));
        // The dedup knob belongs to the PBSM methods: exercise both the
        // two-layer (duplicate-free) and merge-dedup filters there; the
        // other methods ignore it and run once.
        const bool pbsm_family = method == JoinMethod::kPbsm ||
                                 method == JoinMethod::kParallelPbsm;
        std::vector<DedupMode> modes = {DedupMode::kTwoLayer};
        if (pbsm_family) modes.push_back(DedupMode::kMerge);
        for (const DedupMode mode : modes) {
          SCOPED_TRACE(DedupModeName(mode));
          // The refinement strategy is shared by every method downstream of
          // its filter, so adaptive true-hit filtering must be
          // result-invariant on each of them (kApproximate is exempt — it
          // trades exactness away by contract and is covered by the fuzz
          // suite's conservatism bounds instead).
          for (const RefineMode refine :
               {RefineMode::kExact, RefineMode::kAdaptive}) {
            SCOPED_TRACE(RefineModeName(refine));
            StorageEnv env(512 * kPageSize);
            PBSM_ASSERT_OK_AND_ASSIGN(
                const StoredRelation r,
                LoadRelation(env.pool(), nullptr, "road", roads, c.clustered));
            PBSM_ASSERT_OK_AND_ASSIGN(
                const StoredRelation s,
                LoadRelation(env.pool(), nullptr, "hydro", hydro, c.clustered));

            JoinSpec spec;
            spec.method = method;
            spec.predicate = c.pred;
            spec.options.memory_budget_bytes = 1 << 20;
            spec.options.num_tiles = c.num_tiles;
            spec.options.num_threads = c.num_threads;
            spec.options.simd = simd;
            spec.options.dedup_mode = mode;
            spec.options.refine.mode = refine;
            PBSM_ASSERT_OK_AND_ASSIGN(const IdPairSet got,
                                      RunJoinToIdPairs(env.pool(), r, s, spec));
            EXPECT_EQ(got, expected);
          }
        }
      }
    }
  }
}

// The node-layout axis for the index-based methods: INL probes and the
// BKS93 tree join must be oracle-exact under every in-memory node layout
// (AoS page scans, SoA double ribbons, quantized uint16 ribbons) crossed
// with both filter kernels. This is the end-to-end check that the
// quantized prefilter's re-verification step loses nothing and invents
// nothing — through real trees, real candidates, real refinement.
TEST_F(JoinDifferentialTest, IndexMethodsMatchOracleAcrossNodeLayouts) {
  const std::vector<SweepCase> sweep = MakeSweep();
  // Three cases give predicate/clustering variety; layouts are orthogonal
  // to dataset shape, so the full six would only add runtime.
  for (size_t ci = 0; ci < 3 && ci < sweep.size(); ++ci) {
    const SweepCase& c = sweep[ci];
    SCOPED_TRACE(c.Describe());
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    std::vector<Tuple> roads = gen.GenerateRoads(c.r_count);
    std::vector<Tuple> hydro = gen.GenerateHydrography(c.s_count);
    const IdPairSet expected = BruteForceJoin(roads, hydro, c.pred);

    StorageEnv env(512 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "road", roads, c.clustered));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", hydro, c.clustered));

    for (const NodeLayout layout :
         {NodeLayout::kAos, NodeLayout::kSoa, NodeLayout::kSoaQuantized}) {
      SCOPED_TRACE(std::string("layout=") +
                   std::string(NodeLayoutName(layout)));
      for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
        SCOPED_TRACE(simd == SimdMode::kScalar ? "simd=scalar" : "simd=avx2");
        for (const JoinMethod method :
             {JoinMethod::kInl, JoinMethod::kRtree}) {
          SCOPED_TRACE(JoinMethodName(method));
          JoinSpec spec;
          spec.method = method;
          spec.predicate = c.pred;
          spec.options.memory_budget_bytes = 1 << 20;
          spec.options.num_threads = c.num_threads;
          spec.options.simd = simd;
          spec.options.rtree_layout = layout;
          PBSM_ASSERT_OK_AND_ASSIGN(const IdPairSet got,
                                    RunJoinToIdPairs(env.pool(), r, s, spec));
          EXPECT_EQ(got, expected);
        }
      }
    }
  }
}

/// Runs one request through the router with a thread-safe collecting sink
/// (router sinks fire concurrently from shard workers) and translates the
/// emitted GLOBAL oids back into tuple-id space.
Result<IdPairSet> RunShardedToIdPairs(JoinRouter* router, JoinRequest request,
                                      const std::map<uint64_t, uint64_t>& r_ids,
                                      const std::map<uint64_t, uint64_t>& s_ids,
                                      uint64_t* num_results = nullptr) {
  std::mutex mutex;
  std::vector<std::pair<Oid, Oid>> raw;
  request.sink = [&mutex, &raw](Oid ro, Oid so) {
    std::lock_guard<std::mutex> lock(mutex);
    raw.emplace_back(ro, so);
  };
  PBSM_ASSIGN_OR_RETURN(const JoinResponse response,
                        router->Execute(std::move(request)));
  if (num_results != nullptr) *num_results = response.num_results;
  IdPairSet out;
  for (const auto& [ro, so] : raw) {
    out.emplace(r_ids.at(ro.Encode()), s_ids.at(so.Encode()));
  }
  return out;
}

// The sharded scatter-gather axis: for every shard count, every method, and
// both dedup schemes, the gathered pair MULTISET must equal the single-shard
// oracle — no pair lost at a shard border, none emitted twice (the sink
// count equals the set size, so duplicates cannot hide).
TEST_F(JoinDifferentialTest, ShardedScatterGatherMatchesOracleAcrossShardCounts) {
  const std::vector<SweepCase> sweep = MakeSweep();
  // The first three sweep cases give predicate/clustering variety; the full
  // six would double runtime without new border geometry.
  for (size_t ci = 0; ci < 3 && ci < sweep.size(); ++ci) {
    const SweepCase& c = sweep[ci];
    SCOPED_TRACE(c.Describe());
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    const std::vector<Tuple> roads = gen.GenerateRoads(c.r_count);
    const std::vector<Tuple> hydro = gen.GenerateHydrography(c.s_count);
    const IdPairSet expected = BruteForceJoin(roads, hydro, c.pred);

    StorageEnv env(1024 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "road", roads, c.clustered));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", hydro, c.clustered));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
    PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

    for (const uint32_t num_shards : {1u, 2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(num_shards));
      ShardManagerConfig shard_config;
      shard_config.num_shards = num_shards;
      ShardManager shards(shard_config);
      PBSM_ASSERT_OK(shards.RegisterDataset("road", &r.heap, r.info));
      PBSM_ASSERT_OK(shards.RegisterDataset("hydro", &s.heap, s.info));

      for (const DedupMode dedup : {DedupMode::kTwoLayer, DedupMode::kMerge}) {
        SCOPED_TRACE(DedupModeName(dedup));
        JoinRouterConfig router_config;
        router_config.join_defaults.memory_budget_bytes = 1 << 20;
        router_config.join_defaults.num_tiles = c.num_tiles;
        router_config.join_defaults.num_threads = c.num_threads;
        router_config.join_defaults.dedup_mode = dedup;
        JoinRouter router(&shards, router_config);
        int method_index = 0;
        for (const JoinMethod method : AllJoinMethods()) {
          SCOPED_TRACE(JoinMethodName(method));
          JoinRequest request;
          request.r_dataset = "road";
          request.s_dataset = "hydro";
          request.predicate = c.pred;
          request.method = method;
          // Rotate the refinement strategy so both modes see every shard
          // count without doubling the sweep.
          request.refine_mode = (method_index++ + static_cast<int>(ci)) % 2
                                    ? RefineMode::kAdaptive
                                    : RefineMode::kExact;
          uint64_t num_results = 0;
          PBSM_ASSERT_OK_AND_ASSIGN(
              const IdPairSet got,
              RunShardedToIdPairs(&router, std::move(request), r_ids, s_ids,
                                  &num_results));
          EXPECT_EQ(got, expected);
          EXPECT_EQ(num_results, expected.size())
              << "sink count != distinct pairs: a border pair was duplicated";
        }
        router.Shutdown(/*drain=*/true);
      }
    }
  }
}

// Windows centered ON the shard boundaries — the adversarial case for
// window-clipped dispatch: pairs whose unclamped reference corner lies in a
// strip the window does not cover must still be emitted exactly once, by an
// overlapping shard (the clamped-corner ownership rule).
TEST_F(JoinDifferentialTest, ShardedBorderStraddlingWindowsMatchOracle) {
  const SweepCase c = MakeSweep()[0];
  TigerGenerator::Params params;
  params.seed = c.dataset_seed;
  params.universe = Rect(params.universe.xlo, params.universe.ylo,
                         params.universe.xlo + params.universe.width() / 8,
                         params.universe.ylo + params.universe.height() / 8);
  TigerGenerator gen(params);
  const std::vector<Tuple> roads = gen.GenerateRoads(250);
  const std::vector<Tuple> hydro = gen.GenerateHydrography(150);

  StorageEnv env(1024 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const StoredRelation r,
                            LoadRelation(env.pool(), nullptr, "road", roads));
  PBSM_ASSERT_OK_AND_ASSIGN(const StoredRelation s,
                            LoadRelation(env.pool(), nullptr, "hydro", hydro));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto r_ids, OidToIdMap(r.heap));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto s_ids, OidToIdMap(s.heap));

  for (const uint32_t num_shards : {2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardManagerConfig shard_config;
    shard_config.num_shards = num_shards;
    ShardManager shards(shard_config);
    PBSM_ASSERT_OK(shards.RegisterDataset("road", &r.heap, r.info));
    PBSM_ASSERT_OK(shards.RegisterDataset("hydro", &s.heap, s.info));
    const ShardLayout layout = shards.layout();
    JoinRouter router(&shards, {});

    // One window straddling each interior boundary, plus the full universe
    // as a degenerate "window that clips nothing".
    std::vector<Rect> windows;
    const double half_w = layout.universe().width() / (4.0 * num_shards);
    for (const double b : layout.boundaries()) {
      windows.emplace_back(b - half_w, layout.universe().ylo, b + half_w,
                           layout.universe().yhi);
    }
    windows.push_back(layout.universe());

    for (const Rect& window : windows) {
      SCOPED_TRACE("window.x=[" + std::to_string(window.xlo) + ", " +
                   std::to_string(window.xhi) + "]");
      const IdPairSet expected =
          WindowOracle(roads, hydro, SpatialPredicate::kIntersects, window);
      JoinRequest request;
      request.r_dataset = "road";
      request.s_dataset = "hydro";
      request.method = JoinMethod::kPbsm;
      request.window = window;
      uint64_t num_results = 0;
      PBSM_ASSERT_OK_AND_ASSIGN(
          const IdPairSet got,
          RunShardedToIdPairs(&router, std::move(request), r_ids, s_ids,
                              &num_results));
      EXPECT_EQ(got, expected);
      EXPECT_EQ(num_results, expected.size());
    }
    router.Shutdown(/*drain=*/true);
  }
}

TEST_F(JoinDifferentialTest, OracleIsNonTrivialOnSweep) {
  // Guards the sweep against degenerating into empty joins (which would
  // vacuously pass the differential comparison above).
  uint64_t total = 0;
  for (const SweepCase& c : MakeSweep()) {
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    TigerGenerator gen(params);
    total += BruteForceJoin(gen.GenerateRoads(c.r_count),
                            gen.GenerateHydrography(c.s_count), c.pred)
                 .size();
  }
  EXPECT_GT(total, 0u);
}

TEST_F(JoinDifferentialTest, TinyAndEmptyInputs) {
  // Edge cardinalities the randomized sweep never hits: 0 and 1 tuples.
  TigerGenerator::Params params;
  params.seed = 7;
  TigerGenerator gen(params);
  const std::vector<Tuple> one = gen.GenerateRoads(1);
  const std::vector<Tuple> none;
  const std::vector<Tuple> few = gen.GenerateHydrography(12);

  struct Shape {
    std::vector<Tuple> r, s;
  };
  const Shape shapes[] = {{one, few}, {few, one}, {one, one}, {none, few}};
  for (const Shape& shape : shapes) {
    const IdPairSet expected =
        BruteForceJoin(shape.r, shape.s, SpatialPredicate::kIntersects);
    for (const JoinMethod method : AllJoinMethods()) {
      SCOPED_TRACE(JoinMethodName(method));
      StorageEnv env(512 * kPageSize);
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation r,
          LoadRelation(env.pool(), nullptr, "r", shape.r));
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation s,
          LoadRelation(env.pool(), nullptr, "s", shape.s));
      JoinSpec spec;
      spec.method = method;
      spec.options.num_tiles = 32;
      auto got = RunJoinToIdPairs(env.pool(), r, s, spec);
      if (shape.r.empty() || shape.s.empty()) {
        // An empty side may be rejected (empty universe) or yield an empty
        // result; either way it must not produce pairs or crash.
        if (got.ok()) {
          EXPECT_TRUE(got->empty());
        }
        continue;
      }
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, expected);
    }
  }
}

}  // namespace
}  // namespace pbsm
