// Differential join correctness: every SpatialJoin method, across a seeded
// randomized sweep of datasets, tile counts, thread counts and predicates,
// must produce exactly the pair set of a brute-force O(n^2) oracle that
// shares nothing with the join machinery beyond the geometry kernels.
//
// This harness (tests/join_test_harness.h) is also what the fault-injection
// tests replay under injected I/O errors, so keeping it oracle-exact here is
// what gives the fault suite its "bit-identical results" baseline.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/tiger_gen.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

struct SweepCase {
  uint64_t dataset_seed;
  uint64_t r_count;
  uint64_t s_count;
  uint32_t num_tiles;
  uint32_t num_threads;
  SpatialPredicate pred;
  bool clustered;

  std::string Describe() const {
    return "seed=" + std::to_string(dataset_seed) +
           " r=" + std::to_string(r_count) + " s=" + std::to_string(s_count) +
           " tiles=" + std::to_string(num_tiles) +
           " threads=" + std::to_string(num_threads) +
           " pred=" + (pred == SpatialPredicate::kIntersects ? "intersects"
                                                             : "contains") +
           (clustered ? " clustered" : "");
  }
};

/// Draws the sweep from one fixed seed so every run tests the identical
/// configurations; bump kSweepSeed deliberately to rotate the corpus.
std::vector<SweepCase> MakeSweep() {
  constexpr uint64_t kSweepSeed = 20260806;
  Rng rng(kSweepSeed);
  std::vector<SweepCase> cases;
  for (int i = 0; i < 6; ++i) {
    SweepCase c;
    c.dataset_seed = rng.Next();
    c.r_count = 80 + rng.Uniform(220);   // 80..299 tuples.
    c.s_count = 40 + rng.Uniform(160);   // 40..199 tuples.
    c.num_tiles = 16u << rng.Uniform(5); // 16..256.
    c.num_threads = 1 + static_cast<uint32_t>(rng.Uniform(4));  // 1..4.
    c.pred = rng.Bernoulli(0.5) ? SpatialPredicate::kIntersects
                                : SpatialPredicate::kContains;
    c.clustered = rng.Bernoulli(0.3);
    cases.push_back(c);
  }
  return cases;
}

class JoinDifferentialTest : public ::testing::Test {};

TEST_F(JoinDifferentialTest, AllMethodsMatchBruteForceOracleAcrossSweep) {
  for (const SweepCase& c : MakeSweep()) {
    SCOPED_TRACE(c.Describe());
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    // An eighth of the default universe: at sweep-sized cardinalities the
    // full Wisconsin extent yields near-empty joins, which would make the
    // differential comparison vacuous.
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    std::vector<Tuple> roads = gen.GenerateRoads(c.r_count);
    std::vector<Tuple> hydro = gen.GenerateHydrography(c.s_count);

    const IdPairSet expected = BruteForceJoin(roads, hydro, c.pred);

    // Every method must match the oracle under the scalar filter kernel AND
    // the vector kernel (kAvx2 resolves to scalar on hosts without AVX2, so
    // the second pass is never vacuous — just redundant there).
    for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
      SCOPED_TRACE(simd == SimdMode::kScalar ? "simd=scalar" : "simd=avx2");
      for (const JoinMethod method : AllJoinMethods()) {
        SCOPED_TRACE(JoinMethodName(method));
        // The dedup knob belongs to the PBSM methods: exercise both the
        // two-layer (duplicate-free) and merge-dedup filters there; the
        // other methods ignore it and run once.
        const bool pbsm_family = method == JoinMethod::kPbsm ||
                                 method == JoinMethod::kParallelPbsm;
        std::vector<DedupMode> modes = {DedupMode::kTwoLayer};
        if (pbsm_family) modes.push_back(DedupMode::kMerge);
        for (const DedupMode mode : modes) {
          SCOPED_TRACE(DedupModeName(mode));
          // The refinement strategy is shared by every method downstream of
          // its filter, so adaptive true-hit filtering must be
          // result-invariant on each of them (kApproximate is exempt — it
          // trades exactness away by contract and is covered by the fuzz
          // suite's conservatism bounds instead).
          for (const RefineMode refine :
               {RefineMode::kExact, RefineMode::kAdaptive}) {
            SCOPED_TRACE(RefineModeName(refine));
            StorageEnv env(512 * kPageSize);
            PBSM_ASSERT_OK_AND_ASSIGN(
                const StoredRelation r,
                LoadRelation(env.pool(), nullptr, "road", roads, c.clustered));
            PBSM_ASSERT_OK_AND_ASSIGN(
                const StoredRelation s,
                LoadRelation(env.pool(), nullptr, "hydro", hydro, c.clustered));

            JoinSpec spec;
            spec.method = method;
            spec.predicate = c.pred;
            spec.options.memory_budget_bytes = 1 << 20;
            spec.options.num_tiles = c.num_tiles;
            spec.options.num_threads = c.num_threads;
            spec.options.simd = simd;
            spec.options.dedup_mode = mode;
            spec.options.refine.mode = refine;
            PBSM_ASSERT_OK_AND_ASSIGN(const IdPairSet got,
                                      RunJoinToIdPairs(env.pool(), r, s, spec));
            EXPECT_EQ(got, expected);
          }
        }
      }
    }
  }
}

TEST_F(JoinDifferentialTest, OracleIsNonTrivialOnSweep) {
  // Guards the sweep against degenerating into empty joins (which would
  // vacuously pass the differential comparison above).
  uint64_t total = 0;
  for (const SweepCase& c : MakeSweep()) {
    TigerGenerator::Params params;
    params.seed = c.dataset_seed;
    TigerGenerator gen(params);
    total += BruteForceJoin(gen.GenerateRoads(c.r_count),
                            gen.GenerateHydrography(c.s_count), c.pred)
                 .size();
  }
  EXPECT_GT(total, 0u);
}

TEST_F(JoinDifferentialTest, TinyAndEmptyInputs) {
  // Edge cardinalities the randomized sweep never hits: 0 and 1 tuples.
  TigerGenerator::Params params;
  params.seed = 7;
  TigerGenerator gen(params);
  const std::vector<Tuple> one = gen.GenerateRoads(1);
  const std::vector<Tuple> none;
  const std::vector<Tuple> few = gen.GenerateHydrography(12);

  struct Shape {
    std::vector<Tuple> r, s;
  };
  const Shape shapes[] = {{one, few}, {few, one}, {one, one}, {none, few}};
  for (const Shape& shape : shapes) {
    const IdPairSet expected =
        BruteForceJoin(shape.r, shape.s, SpatialPredicate::kIntersects);
    for (const JoinMethod method : AllJoinMethods()) {
      SCOPED_TRACE(JoinMethodName(method));
      StorageEnv env(512 * kPageSize);
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation r,
          LoadRelation(env.pool(), nullptr, "r", shape.r));
      PBSM_ASSERT_OK_AND_ASSIGN(
          const StoredRelation s,
          LoadRelation(env.pool(), nullptr, "s", shape.s));
      JoinSpec spec;
      spec.method = method;
      spec.options.num_tiles = 32;
      auto got = RunJoinToIdPairs(env.pool(), r, s, spec);
      if (shape.r.empty() || shape.s.empty()) {
        // An empty side may be rejected (empty universe) or yield an empty
        // result; either way it must not produce pairs or crash.
        if (got.ok()) {
          EXPECT_TRUE(got->empty());
        }
        continue;
      }
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, expected);
    }
  }
}

}  // namespace
}  // namespace pbsm
