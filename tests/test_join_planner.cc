#include "service/join_planner.h"

#include <gtest/gtest.h>

#include <set>

#include "core/selectivity.h"

namespace pbsm {
namespace {

RelationInfo MakeInfo(const std::string& name, uint64_t cardinality,
                      double avg_extent, double avg_points = 30.0) {
  RelationInfo info;
  info.name = name;
  info.cardinality = cardinality;
  info.universe = Rect(0, 0, 1000, 1000);
  info.total_points =
      static_cast<uint64_t>(avg_points * static_cast<double>(cardinality));
  info.sum_mbr_width = avg_extent * static_cast<double>(cardinality);
  info.sum_mbr_height = avg_extent * static_cast<double>(cardinality);
  return info;
}

TEST(EstimateCandidatePairsTest, ZeroForEmptyInput) {
  const RelationInfo r = MakeInfo("r", 0, 1.0);
  const RelationInfo s = MakeInfo("s", 1000, 1.0);
  EXPECT_EQ(EstimateCandidatePairs(r, s), 0.0);
  EXPECT_EQ(EstimateCandidatePairs(s, r), 0.0);
}

TEST(EstimateCandidatePairsTest, ScalesWithDensity) {
  const RelationInfo r = MakeInfo("r", 10000, 1.0);
  const RelationInfo sparse = MakeInfo("s", 10000, 1.0);
  const RelationInfo dense = MakeInfo("s", 10000, 10.0);
  const double few = EstimateCandidatePairs(r, sparse);
  const double many = EstimateCandidatePairs(r, dense);
  EXPECT_GT(few, 0.0);
  EXPECT_GT(many, few);
  // Never more than the cross product.
  EXPECT_LE(many, 10000.0 * 10000.0);
}

TEST(PlanJoinTest, RanksAllSixMethods) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 20000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, 1);
  ASSERT_EQ(choice.alternatives.size(), 6u);
  std::set<JoinMethod> seen;
  double prev = -1.0;
  for (const MethodCost& alt : choice.alternatives) {
    seen.insert(alt.method);
    EXPECT_GE(alt.estimated_seconds, prev);  // Ascending.
    prev = alt.estimated_seconds;
  }
  EXPECT_EQ(seen.size(), 6u);  // Every method costed exactly once.
  EXPECT_EQ(choice.method, choice.alternatives.front().method);
  EXPECT_GT(choice.estimated_candidates, 0.0);
  EXPECT_FALSE(choice.ToString().empty());
}

TEST(PlanJoinTest, ColdSingleThreadPrefersSerialPbsm) {
  // The calibrated regime of the TIGER workloads: similar-scale inputs,
  // nothing cached, one core. Index builds make the tree methods lose and
  // the parallel executor has no extra threads to pay for its overhead.
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, /*threads=*/1);
  EXPECT_EQ(choice.method, JoinMethod::kPbsm);
}

TEST(PlanJoinTest, ManyThreadsPreferParallelPbsm) {
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, /*threads=*/8);
  EXPECT_EQ(choice.method, JoinMethod::kParallelPbsm);
}

TEST(PlanJoinTest, WarmIndexesFlipTheChoiceToRtree) {
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  PlannerSide r{&r_info};
  PlannerSide s{&s_info};
  const PlanChoice cold = PlanJoin(r, s, 1);
  EXPECT_NE(cold.method, JoinMethod::kRtree);

  r.index_cached = true;
  s.index_cached = true;
  const PlanChoice warm = PlanJoin(r, s, 1);
  EXPECT_EQ(warm.method, JoinMethod::kRtree);
  EXPECT_LT(warm.estimated_seconds, cold.estimated_seconds);
}

TEST(PlanJoinTest, HistogramSharpensTheCandidateEstimate) {
  RelationInfo r_info = MakeInfo("r", 10000, 5.0);
  RelationInfo s_info = MakeInfo("s", 10000, 5.0);

  // Catalog-only model assumes uniform spread; build histograms where the
  // two inputs occupy disjoint halves of the universe, so the histogram
  // estimate must come out far below the catalog one.
  SpatialHistogram r_hist(r_info.universe, 8, 8);
  SpatialHistogram s_hist(s_info.universe, 8, 8);
  for (int i = 0; i < 10000; ++i) {
    const double y = (i % 100) * 10.0;
    r_hist.Add(Rect(10, y, 15, y + 5));        // Left edge.
    s_hist.Add(Rect(900, y, 905, y + 5));      // Right edge.
  }
  const PlanChoice catalog_only = PlanJoin({&r_info}, {&s_info}, 1);
  const PlanChoice with_hist =
      PlanJoin({&r_info, &r_hist}, {&s_info, &s_hist}, 1);
  EXPECT_LT(with_hist.estimated_candidates,
            catalog_only.estimated_candidates);
}

TEST(PlanJoinTest, MergeDedupModeChargesOnlyThePbsmMethods) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 20000, 2.0);
  PlannerCosts costs;  // Default: two-layer, no merge-dedup term.
  const PlanChoice two_layer = PlanJoin({&r_info}, {&s_info}, 8, costs);
  costs.dedup_mode = DedupMode::kMerge;
  const PlanChoice merge = PlanJoin({&r_info}, {&s_info}, 8, costs);

  auto cost_of = [](const PlanChoice& choice, JoinMethod m) {
    for (const MethodCost& alt : choice.alternatives) {
      if (alt.method == m) return alt.estimated_seconds;
    }
    ADD_FAILURE() << "method missing from plan";
    return 0.0;
  };
  // The serial dedup phase makes both PBSM variants dearer under kMerge...
  EXPECT_GT(cost_of(merge, JoinMethod::kPbsm),
            cost_of(two_layer, JoinMethod::kPbsm));
  EXPECT_GT(cost_of(merge, JoinMethod::kParallelPbsm),
            cost_of(two_layer, JoinMethod::kParallelPbsm));
  // ...while methods without the knob are untouched.
  EXPECT_EQ(cost_of(merge, JoinMethod::kRtree),
            cost_of(two_layer, JoinMethod::kRtree));
  EXPECT_EQ(cost_of(merge, JoinMethod::kSpatialHash),
            cost_of(two_layer, JoinMethod::kSpatialHash));
}

TEST(PlanJoinTest, OverrideCostsSteerTheChoice) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 50000, 2.0);
  PlannerCosts costs;
  costs.hash_per_tuple = 1e-12;  // Make hashing essentially free.
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, 1, costs);
  EXPECT_EQ(choice.method, JoinMethod::kSpatialHash);
}

}  // namespace
}  // namespace pbsm
