#include "service/join_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "core/selectivity.h"
#include "datagen/tiger_gen.h"
#include "service/shard_manager.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

RelationInfo MakeInfo(const std::string& name, uint64_t cardinality,
                      double avg_extent, double avg_points = 30.0) {
  RelationInfo info;
  info.name = name;
  info.cardinality = cardinality;
  info.universe = Rect(0, 0, 1000, 1000);
  info.total_points =
      static_cast<uint64_t>(avg_points * static_cast<double>(cardinality));
  info.sum_mbr_width = avg_extent * static_cast<double>(cardinality);
  info.sum_mbr_height = avg_extent * static_cast<double>(cardinality);
  return info;
}

TEST(EstimateCandidatePairsTest, ZeroForEmptyInput) {
  const RelationInfo r = MakeInfo("r", 0, 1.0);
  const RelationInfo s = MakeInfo("s", 1000, 1.0);
  EXPECT_EQ(EstimateCandidatePairs(r, s), 0.0);
  EXPECT_EQ(EstimateCandidatePairs(s, r), 0.0);
}

TEST(EstimateCandidatePairsTest, ScalesWithDensity) {
  const RelationInfo r = MakeInfo("r", 10000, 1.0);
  const RelationInfo sparse = MakeInfo("s", 10000, 1.0);
  const RelationInfo dense = MakeInfo("s", 10000, 10.0);
  const double few = EstimateCandidatePairs(r, sparse);
  const double many = EstimateCandidatePairs(r, dense);
  EXPECT_GT(few, 0.0);
  EXPECT_GT(many, few);
  // Never more than the cross product.
  EXPECT_LE(many, 10000.0 * 10000.0);
}

TEST(PlanJoinTest, RanksAllSixMethods) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 20000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, 1);
  ASSERT_EQ(choice.alternatives.size(), 6u);
  std::set<JoinMethod> seen;
  double prev = -1.0;
  for (const MethodCost& alt : choice.alternatives) {
    seen.insert(alt.method);
    EXPECT_GE(alt.estimated_seconds, prev);  // Ascending.
    prev = alt.estimated_seconds;
  }
  EXPECT_EQ(seen.size(), 6u);  // Every method costed exactly once.
  EXPECT_EQ(choice.method, choice.alternatives.front().method);
  EXPECT_GT(choice.estimated_candidates, 0.0);
  EXPECT_FALSE(choice.ToString().empty());
}

TEST(PlanJoinTest, ColdSingleThreadPrefersSerialPbsm) {
  // The calibrated regime of the TIGER workloads: similar-scale inputs,
  // nothing cached, one core. Index builds make the tree methods lose and
  // the parallel executor has no extra threads to pay for its overhead.
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, /*threads=*/1);
  EXPECT_EQ(choice.method, JoinMethod::kPbsm);
}

TEST(PlanJoinTest, ManyThreadsPreferParallelPbsm) {
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, /*threads=*/8);
  EXPECT_EQ(choice.method, JoinMethod::kParallelPbsm);
}

TEST(PlanJoinTest, WarmIndexesFlipTheChoiceToRtree) {
  const RelationInfo r_info = MakeInfo("road", 68000, 2.0);
  const RelationInfo s_info = MakeInfo("hydro", 18000, 2.0);
  PlannerSide r{&r_info};
  PlannerSide s{&s_info};
  const PlanChoice cold = PlanJoin(r, s, 1);
  EXPECT_NE(cold.method, JoinMethod::kRtree);

  r.index_cached = true;
  s.index_cached = true;
  const PlanChoice warm = PlanJoin(r, s, 1);
  EXPECT_EQ(warm.method, JoinMethod::kRtree);
  EXPECT_LT(warm.estimated_seconds, cold.estimated_seconds);
}

TEST(PlanJoinTest, HistogramSharpensTheCandidateEstimate) {
  RelationInfo r_info = MakeInfo("r", 10000, 5.0);
  RelationInfo s_info = MakeInfo("s", 10000, 5.0);

  // Catalog-only model assumes uniform spread; build histograms where the
  // two inputs occupy disjoint halves of the universe, so the histogram
  // estimate must come out far below the catalog one.
  SpatialHistogram r_hist(r_info.universe, 8, 8);
  SpatialHistogram s_hist(s_info.universe, 8, 8);
  for (int i = 0; i < 10000; ++i) {
    const double y = (i % 100) * 10.0;
    r_hist.Add(Rect(10, y, 15, y + 5));        // Left edge.
    s_hist.Add(Rect(900, y, 905, y + 5));      // Right edge.
  }
  const PlanChoice catalog_only = PlanJoin({&r_info}, {&s_info}, 1);
  const PlanChoice with_hist =
      PlanJoin({&r_info, &r_hist}, {&s_info, &s_hist}, 1);
  EXPECT_LT(with_hist.estimated_candidates,
            catalog_only.estimated_candidates);
}

TEST(PlanJoinTest, MergeDedupModeChargesOnlyThePbsmMethods) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 20000, 2.0);
  PlannerCosts costs;  // Default: two-layer, no merge-dedup term.
  const PlanChoice two_layer = PlanJoin({&r_info}, {&s_info}, 8, costs);
  costs.dedup_mode = DedupMode::kMerge;
  const PlanChoice merge = PlanJoin({&r_info}, {&s_info}, 8, costs);

  auto cost_of = [](const PlanChoice& choice, JoinMethod m) {
    for (const MethodCost& alt : choice.alternatives) {
      if (alt.method == m) return alt.estimated_seconds;
    }
    ADD_FAILURE() << "method missing from plan";
    return 0.0;
  };
  // The serial dedup phase makes both PBSM variants dearer under kMerge...
  EXPECT_GT(cost_of(merge, JoinMethod::kPbsm),
            cost_of(two_layer, JoinMethod::kPbsm));
  EXPECT_GT(cost_of(merge, JoinMethod::kParallelPbsm),
            cost_of(two_layer, JoinMethod::kParallelPbsm));
  // ...while methods without the knob are untouched.
  EXPECT_EQ(cost_of(merge, JoinMethod::kRtree),
            cost_of(two_layer, JoinMethod::kRtree));
  EXPECT_EQ(cost_of(merge, JoinMethod::kSpatialHash),
            cost_of(two_layer, JoinMethod::kSpatialHash));
}

TEST(PlanJoinTest, OverrideCostsSteerTheChoice) {
  const RelationInfo r_info = MakeInfo("r", 50000, 2.0);
  const RelationInfo s_info = MakeInfo("s", 50000, 2.0);
  PlannerCosts costs;
  costs.hash_per_tuple = 1e-12;  // Make hashing essentially free.
  const PlanChoice choice = PlanJoin({&r_info}, {&s_info}, 1, costs);
  EXPECT_EQ(choice.method, JoinMethod::kSpatialHash);
}

// ---------------------------------------------------------------------------
// Sharded planning: one plan per shard slice, costed from that shard's own
// slice statistics and index-cache state.
// ---------------------------------------------------------------------------

class PlanShardedJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 42;
    params.universe = Rect(params.universe.xlo, params.universe.ylo,
                           params.universe.xlo + params.universe.width() / 8,
                           params.universe.ylo + params.universe.height() / 8);
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(1200);
    hydro_ = gen.GenerateHydrography(500);

    auto road = LoadRelation(storage_.pool(), nullptr, "road", roads_);
    ASSERT_TRUE(road.ok()) << road.status().ToString();
    road_.emplace(std::move(road).value());
    auto hydro = LoadRelation(storage_.pool(), nullptr, "hydro", hydro_);
    ASSERT_TRUE(hydro.ok()) << hydro.status().ToString();
    hydro_rel_.emplace(std::move(hydro).value());

    ShardManagerConfig config;
    config.num_shards = 4;
    shards_.emplace(config);
    PBSM_ASSERT_OK(
        shards_->RegisterDataset("road", &road_->heap, road_->info));
    PBSM_ASSERT_OK(
        shards_->RegisterDataset("hydro", &hydro_rel_->heap,
                                 hydro_rel_->info));
  }

  /// Bulk-builds the cached R-trees over both of `shard`'s slices, at the
  /// fill factor PlanShardedJoin checks by default.
  void WarmShard(uint32_t shard) {
    const double fill = JoinOptions().index_fill_factor;
    for (const std::string& name : {std::string("road"),
                                    std::string("hydro")}) {
      PBSM_ASSERT_OK_AND_ASSIGN(const auto dataset,
                                shards_->FindDataset(shard, name));
      PBSM_ASSERT_OK(shards_->shard(shard)
                         .cache
                         ->GetOrBuild(
                             JoinInput{dataset->heap.get(), dataset->info},
                             fill)
                         .status());
    }
  }

  StorageEnv storage_{4096 * kPageSize};
  std::vector<Tuple> roads_, hydro_;
  std::optional<StoredRelation> road_, hydro_rel_;
  std::optional<ShardManager> shards_;
};

TEST_F(PlanShardedJoinTest, CoversEverySliceWithAggregateTotals) {
  PBSM_ASSERT_OK_AND_ASSIGN(const ShardedPlan plan,
                            PlanShardedJoin(*shards_, "road", "hydro"));
  ASSERT_EQ(plan.slices.size(), 4u);
  double max_est = 0.0, sum_est = 0.0;
  for (uint32_t i = 0; i < 4; ++i) {
    const ShardSlicePlan& slice = plan.slices[i];
    EXPECT_EQ(slice.shard, i);
    ASSERT_GT(slice.r_cardinality, 0u);
    ASSERT_GT(slice.s_cardinality, 0u);
    EXPECT_EQ(slice.choice.alternatives.size(), 6u);
    EXPECT_GT(slice.choice.estimated_seconds, 0.0);
    max_est = std::max(max_est, slice.choice.estimated_seconds);
    sum_est += slice.choice.estimated_seconds;
  }
  EXPECT_DOUBLE_EQ(plan.critical_path_seconds, max_est);
  EXPECT_DOUBLE_EQ(plan.serial_seconds, sum_est);
  EXPECT_GE(plan.serial_seconds, plan.critical_path_seconds);
  EXPECT_NE(plan.ToString().find("critical path"), std::string::npos);
}

TEST_F(PlanShardedJoinTest, WarmShardPlansRtreeWhileColdSiblingsDoNot) {
  PBSM_ASSERT_OK_AND_ASSIGN(const ShardedPlan cold,
                            PlanShardedJoin(*shards_, "road", "hydro"));
  for (const ShardSlicePlan& slice : cold.slices) {
    EXPECT_NE(slice.choice.method, JoinMethod::kRtree)
        << "shard " << slice.shard << " planned a cold index build";
  }

  WarmShard(1);
  PBSM_ASSERT_OK_AND_ASSIGN(const ShardedPlan warm,
                            PlanShardedJoin(*shards_, "road", "hydro"));
  EXPECT_EQ(warm.slices[1].choice.method, JoinMethod::kRtree);
  EXPECT_LT(warm.slices[1].choice.estimated_seconds,
            cold.slices[1].choice.estimated_seconds);
  // Shard-aware costing: the siblings' caches are untouched, so their
  // slices keep their cold plans.
  for (const uint32_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(warm.slices[i].choice.method, cold.slices[i].choice.method);
    EXPECT_NE(warm.slices[i].choice.method, JoinMethod::kRtree);
  }
}

TEST_F(PlanShardedJoinTest, UnknownDatasetIsNotFound) {
  const auto plan = PlanShardedJoin(*shards_, "road", "nope");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pbsm
