#include "service/join_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

class JoinServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 42;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(1500);
    hydro_ = gen.GenerateHydrography(600);
    rail_ = gen.GenerateRail(300);
  }

  /// Loads the three relations and registers them with a fresh service.
  struct Env {
    StorageEnv storage{4096 * kPageSize};
    std::optional<StoredRelation> road, hydro, rail;
    std::optional<JoinService> service;
  };

  void Start(Env* env, JoinServiceConfig config = {}) {
    auto road = LoadRelation(env->storage.pool(), nullptr, "road", roads_);
    ASSERT_TRUE(road.ok()) << road.status().ToString();
    env->road.emplace(std::move(road).value());
    auto hydro = LoadRelation(env->storage.pool(), nullptr, "hydro", hydro_);
    ASSERT_TRUE(hydro.ok()) << hydro.status().ToString();
    env->hydro.emplace(std::move(hydro).value());
    auto rail = LoadRelation(env->storage.pool(), nullptr, "rail", rail_);
    ASSERT_TRUE(rail.ok()) << rail.status().ToString();
    env->rail.emplace(std::move(rail).value());

    config.join_defaults.memory_budget_bytes = 1 << 20;
    config.join_defaults.num_tiles = 256;
    env->service.emplace(env->storage.pool(), config);
    PBSM_ASSERT_OK(env->service->RegisterDataset("road", &env->road->heap,
                                                 env->road->info));
    PBSM_ASSERT_OK(env->service->RegisterDataset("hydro", &env->hydro->heap,
                                                 env->hydro->info));
    PBSM_ASSERT_OK(env->service->RegisterDataset("rail", &env->rail->heap,
                                                 env->rail->info));
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
  std::vector<Tuple> rail_;
};

TEST_F(JoinServiceTest, ExecutesForcedAndPlannedQueries) {
  Env env;
  Start(&env);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);

  JoinRequest forced;
  forced.r_dataset = "road";
  forced.s_dataset = "hydro";
  forced.method = JoinMethod::kPbsm;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse a,
                            env.service->Execute(forced));
  EXPECT_EQ(a.method, JoinMethod::kPbsm);
  EXPECT_FALSE(a.planner_chosen);
  EXPECT_EQ(a.num_results, oracle.size());

  JoinRequest planned;
  planned.r_dataset = "road";
  planned.s_dataset = "hydro";
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse b,
                            env.service->Execute(planned));
  EXPECT_TRUE(b.planner_chosen);
  EXPECT_FALSE(b.plan.empty());
  EXPECT_EQ(b.num_results, oracle.size());
  env.service->Shutdown(/*drain=*/true);
}

TEST_F(JoinServiceTest, UnknownDatasetAndBadArgsAreRejected) {
  Env env;
  Start(&env);
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "nope";
  EXPECT_EQ(env.service->Submit(request).status().code(),
            StatusCode::kNotFound);
  request.s_dataset = "hydro";
  request.timeout_seconds = -1;
  EXPECT_EQ(env.service->Submit(request).status().code(),
            StatusCode::kInvalidArgument);
  env.service->Shutdown(/*drain=*/true);
}

// Cache-hit joins must produce the exact pair set of cold joins (and of
// the brute-force oracle): a stale or mis-keyed cached index would silently
// corrupt results, which is the one failure a cache must never have.
TEST_F(JoinServiceTest, CacheHitJoinMatchesColdJoinPairSet) {
  Env env;
  Start(&env);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);
  PBSM_ASSERT_OK_AND_ASSIGN(const auto road_ids,
                            OidToIdMap(env.road->heap));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto hydro_ids,
                            OidToIdMap(env.hydro->heap));

  auto run_rtree = [&]() -> IdPairSet {
    IdPairSet out;
    std::mutex mutex;
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kRtree;
    request.sink = [&](Oid ro, Oid so) {
      std::lock_guard<std::mutex> lock(mutex);
      out.emplace(road_ids.at(ro.Encode()), hydro_ids.at(so.Encode()));
    };
    auto response = env.service->Execute(std::move(request));
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return out;
  };

  const uint64_t hits0 = env.service->cache().hits();
  const IdPairSet cold = run_rtree();
  const IdPairSet warm1 = run_rtree();
  const IdPairSet warm2 = run_rtree();
  EXPECT_GE(env.service->cache().hits() - hits0, 4u);  // 2 warm x 2 sides.
  EXPECT_EQ(cold, oracle);
  EXPECT_EQ(warm1, oracle);
  EXPECT_EQ(warm2, oracle);
  env.service->Shutdown(/*drain=*/true);
}

// N producer threads, mixed methods and priorities, every query correct.
// This is the primary TSan target for the scheduler/cache/admission paths.
TEST_F(JoinServiceTest, ConcurrentProducersMixedMethods) {
  Env env;
  JoinServiceConfig config;
  config.num_workers = 3;
  config.queue_capacity = 256;
  Start(&env, config);
  const uint64_t expected =
      BruteForceJoin(roads_, rail_, SpatialPredicate::kIntersects).size();

  constexpr int kProducers = 4;
  constexpr int kQueriesEach = 6;
  std::atomic<int> wrong{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int q = 0; q < kQueriesEach; ++q) {
        JoinRequest request;
        request.r_dataset = "road";
        request.s_dataset = "rail";
        switch ((p + q) % 4) {
          case 0:
            request.method = JoinMethod::kPbsm;
            break;
          case 1:
            request.method = JoinMethod::kRtree;
            break;
          case 2:
            request.method = JoinMethod::kSpatialHash;
            break;
          default:
            break;  // Planner-routed.
        }
        request.priority = (p + q) % 2 == 0 ? QueryPriority::kInteractive
                                            : QueryPriority::kBatch;
        auto response = env.service->Execute(std::move(request));
        if (!response.ok() || response->num_results != expected) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  env.service->Shutdown(/*drain=*/true);
  EXPECT_EQ(env.storage.pool()->pinned_frames(), 0u);
}

TEST_F(JoinServiceTest, TimeoutCancelsMidFlight) {
  Env env;
  Start(&env);
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;
  // Far below the join's runtime: the watchdog trips the query's canceller
  // while it executes (or before it starts — both must yield kCancelled).
  request.timeout_seconds = 1e-4;
  // The sink sleeps so the join outlives the deadline even on a one-core
  // host, where the watchdog thread needs the worker to yield before it can
  // run; the join's per-tile cancellation check then observes the cancel.
  request.sink = [](Oid, Oid) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  auto response = env.service->Execute(std::move(request));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kCancelled);

  // The service keeps serving after a cancellation.
  JoinRequest again;
  again.r_dataset = "road";
  again.s_dataset = "hydro";
  again.method = JoinMethod::kPbsm;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse after,
                            env.service->Execute(again));
  EXPECT_GT(after.num_results, 0u);
  env.service->Shutdown(/*drain=*/true);
  EXPECT_EQ(env.storage.pool()->pinned_frames(), 0u);
}

TEST_F(JoinServiceTest, ClientCancelIsHonoured) {
  Env env;
  Start(&env);
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  PBSM_ASSERT_OK_AND_ASSIGN(const auto query,
                            env.service->Submit(std::move(request)));
  query->Cancel();
  const auto& result = query->Wait();
  // The cancel can land before, during, or (rarely) after the join's last
  // cancellation check; completed-then-cancelled is legal, mid-flight
  // cancels must surface as kCancelled.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  env.service->Shutdown(/*drain=*/true);
}

TEST_F(JoinServiceTest, FullQueueRejectsWithResourceExhausted) {
  Env env;
  JoinServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  Start(&env, config);

  // Flood a 1-deep queue served by one worker: submissions are orders of
  // magnitude faster than the joins, so some must bounce.
  std::vector<std::shared_ptr<JoinQuery>> accepted;
  int rejected = 0;
  for (int i = 0; i < 16; ++i) {
    JoinRequest request;
    request.r_dataset = "hydro";
    request.s_dataset = "rail";
    request.method = JoinMethod::kPbsm;
    auto query = env.service->Submit(std::move(request));
    if (query.ok()) {
      accepted.push_back(std::move(query).value());
    } else {
      EXPECT_EQ(query.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  for (const auto& query : accepted) {
    EXPECT_TRUE(query->Wait().ok()) << query->Wait().status().ToString();
  }
  env.service->Shutdown(/*drain=*/true);
}

// Shutdown(drain) completes every accepted query and leaves the pool with
// zero pinned frames — the "graceful drain" contract.
TEST_F(JoinServiceTest, ShutdownDrainCompletesQueuedWork) {
  Env env;
  JoinServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 64;
  Start(&env, config);

  std::vector<std::shared_ptr<JoinQuery>> queries;
  for (int i = 0; i < 8; ++i) {
    JoinRequest request;
    request.r_dataset = i % 2 == 0 ? "road" : "hydro";
    request.s_dataset = "rail";
    if (i % 3 == 0) request.method = JoinMethod::kRtree;
    PBSM_ASSERT_OK_AND_ASSIGN(auto query,
                              env.service->Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  env.service->Shutdown(/*drain=*/true);
  for (const auto& query : queries) {
    EXPECT_TRUE(query->done());
    EXPECT_TRUE(query->Wait().ok()) << query->Wait().status().ToString();
  }
  // New work is refused after shutdown.
  JoinRequest late;
  late.r_dataset = "road";
  late.s_dataset = "rail";
  EXPECT_EQ(env.service->Submit(late).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(env.storage.pool()->pinned_frames(), 0u);
}

TEST_F(JoinServiceTest, AbortShutdownFailsQueuedQueries) {
  Env env;
  JoinServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 64;
  Start(&env, config);
  std::vector<std::shared_ptr<JoinQuery>> queries;
  for (int i = 0; i < 6; ++i) {
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    PBSM_ASSERT_OK_AND_ASSIGN(auto query,
                              env.service->Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  env.service->Shutdown(/*drain=*/false);
  int cancelled = 0;
  for (const auto& query : queries) {
    EXPECT_TRUE(query->done());
    if (!query->Wait().ok()) {
      EXPECT_EQ(query->Wait().status().code(), StatusCode::kCancelled);
      ++cancelled;
    }
  }
  EXPECT_GT(cancelled, 0);  // At most one query can have finished first.
  EXPECT_EQ(env.storage.pool()->pinned_frames(), 0u);
}

TEST_F(JoinServiceTest, WindowFilterRestrictsResults) {
  Env env;
  Start(&env);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);

  // Window = the universe -> every oracle pair qualifies.
  Rect universe = env.road->info.universe;
  universe.Expand(env.hydro->info.universe);
  JoinRequest all;
  all.r_dataset = "road";
  all.s_dataset = "hydro";
  all.method = JoinMethod::kPbsm;
  all.window = universe;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse everything,
                            env.service->Execute(std::move(all)));
  EXPECT_EQ(everything.num_results, oracle.size());

  // A quarter-universe window keeps only pairs whose MBRs both touch it.
  const Rect quarter(universe.xlo, universe.ylo,
                     universe.xlo + universe.width() / 2,
                     universe.ylo + universe.height() / 2);
  uint64_t expected = 0;
  for (const Tuple& a : roads_) {
    if (!a.geometry.Mbr().Intersects(quarter)) continue;
    for (const Tuple& b : hydro_) {
      if (!b.geometry.Mbr().Intersects(quarter)) continue;
      if (oracle.count({a.id, b.id}) != 0) ++expected;
    }
  }
  JoinRequest windowed;
  windowed.r_dataset = "road";
  windowed.s_dataset = "hydro";
  windowed.method = JoinMethod::kPbsm;
  windowed.window = quarter;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse some,
                            env.service->Execute(std::move(windowed)));
  EXPECT_EQ(some.num_results, expected);
  EXPECT_LT(some.num_results, everything.num_results);
  env.service->Shutdown(/*drain=*/true);
}

TEST_F(JoinServiceTest, DropDatasetInvalidatesCacheAndRejectsQueries) {
  Env env;
  Start(&env);
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "rail";
  request.method = JoinMethod::kRtree;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse warmup,
                            env.service->Execute(request));
  EXPECT_GT(warmup.num_results, 0u);
  EXPECT_EQ(env.service->cache().size(), 2u);

  PBSM_ASSERT_OK(env.service->DropDataset("rail"));
  EXPECT_EQ(env.service->cache().size(), 1u);  // Rail's tree is gone.
  EXPECT_EQ(env.service->Submit(request).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env.service->DropDataset("rail").code(), StatusCode::kNotFound);
  env.service->Shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace pbsm
