// Incrementally-maintained join views: after any interleaving of inserts
// and deletes, the view must equal a from-scratch recomputation over the
// live tuples — the delta joins add exactly the new pairs (duplicate-free
// via the reference-corner rule) and deletes remove exactly the dead ones.
// Plus the service endpoints that expose views (create/query/mutate/drop)
// and their index-cache invalidation hooks.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "datagen/tiger_gen.h"
#include "exec/view_maintainer.h"
#include "service/join_service.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using Side = MaterializedJoinView::Side;
using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// Live tuples of one side, by encoded OID.
using LiveMap = std::map<uint64_t, Tuple>;

/// From-scratch recomputation over the live tuples — the oracle every
/// incremental state must equal. OID space, not id space: the view stores
/// OID pairs.
PairSet Recompute(const LiveMap& live_r, const LiveMap& live_s,
                  SpatialPredicate pred) {
  PairSet out;
  for (const auto& [ro, tr] : live_r) {
    const Rect r_mbr = tr.geometry.Mbr();
    for (const auto& [so, ts] : live_s) {
      if (!r_mbr.Intersects(ts.geometry.Mbr())) continue;
      if (EvaluatePredicate(pred, tr.geometry, ts.geometry,
                            SegmentTestMode::kNaive)) {
        out.emplace(ro, so);
      }
    }
  }
  return out;
}

PairSet ViewPairs(const MaterializedJoinView& view) {
  PairSet out;
  for (const OidPair& p : view.Pairs()) out.emplace(p.r, p.s);
  return out;
}

/// Scans a heap into a LiveMap (initial state after LoadRelation).
Result<LiveMap> ScanLive(const HeapFile& heap) {
  LiveMap live;
  PBSM_RETURN_IF_ERROR(heap.Scan(
      [&live](Oid oid, const char* data, size_t size) -> Status {
        PBSM_ASSIGN_OR_RETURN(const Tuple tuple, Tuple::Parse(data, size));
        live.emplace(oid.Encode(), tuple);
        return Status::OK();
      }));
  return live;
}

TEST(JoinViewTest, RandomizedWorkloadMatchesRecompute) {
  TigerGenerator::Params params;
  params.seed = 20260814;
  params.universe = Rect(params.universe.xlo, params.universe.ylo,
                         params.universe.xlo + params.universe.width() / 8,
                         params.universe.ylo + params.universe.height() / 8);
  TigerGenerator gen(params);
  // The loaded base plus a reserve pool the workload draws inserts from.
  std::vector<Tuple> roads = gen.GenerateRoads(60);
  std::vector<Tuple> hydro = gen.GenerateHydrography(50);
  std::vector<Tuple> extra_r = gen.GenerateRoads(40);
  std::vector<Tuple> extra_s = gen.GenerateHydrography(40);

  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(StoredRelation r, LoadRelation(env.pool(),
                                                           nullptr, "roads",
                                                           roads));
  PBSM_ASSERT_OK_AND_ASSIGN(StoredRelation s, LoadRelation(env.pool(),
                                                           nullptr, "hydro",
                                                           hydro));
  PBSM_ASSERT_OK_AND_ASSIGN(LiveMap live_r, ScanLive(r.heap));
  PBSM_ASSERT_OK_AND_ASSIGN(LiveMap live_s, ScanLive(s.heap));

  const SpatialPredicate pred = SpatialPredicate::kIntersects;
  MaterializedJoinView::Config config;
  config.name = "roads_x_hydro";
  config.predicate = pred;
  config.num_tiles = 64;
  config.base.options.memory_budget_bytes = 1 << 20;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const auto view,
      MaterializedJoinView::Build(env.pool(), r.AsInput(), s.AsInput(),
                                  config));

  // The build itself must equal the oracle before any mutation.
  ASSERT_EQ(ViewPairs(*view), Recompute(live_r, live_s, pred));

  Rng rng(0xFEEDBEEF);
  size_t next_r = 0, next_s = 0;
  for (int op = 0; op < 60; ++op) {
    SCOPED_TRACE("op=" + std::to_string(op));
    const bool mutate_r = rng.Bernoulli(0.5);
    Side side = mutate_r ? Side::kR : Side::kS;
    LiveMap& live = mutate_r ? live_r : live_s;
    // Insert when the reserve has tuples left and a coin says so, or when
    // the side is empty (nothing left to delete).
    std::vector<Tuple>& reserve = mutate_r ? extra_r : extra_s;
    size_t& next = mutate_r ? next_r : next_s;
    const bool do_insert =
        live.empty() || (next < reserve.size() && rng.Bernoulli(0.55));
    if (do_insert && next < reserve.size()) {
      const Tuple& tuple = reserve[next++];
      const std::string record = tuple.Serialize();
      HeapFile& heap = mutate_r ? r.heap : s.heap;
      PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(record));
      PBSM_ASSERT_OK(view->Insert(side, oid, tuple));
      live.emplace(oid.Encode(), tuple);
    } else {
      // Delete a pseudo-random live tuple.
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      PBSM_ASSERT_OK(view->Delete(side, Oid::Decode(it->first)));
      live.erase(it);
    }
    ASSERT_EQ(ViewPairs(*view), Recompute(live_r, live_s, pred));
    ASSERT_EQ(view->num_r(), live_r.size());
    ASSERT_EQ(view->num_s(), live_s.size());
  }
  EXPECT_EQ(env.pool()->pinned_frames(), 0u);
}

TEST(JoinViewTest, MutationErrorsAreReported) {
  TigerGenerator::Params params;
  params.seed = 20260815;
  params.universe = Rect(params.universe.xlo, params.universe.ylo,
                         params.universe.xlo + params.universe.width() / 8,
                         params.universe.ylo + params.universe.height() / 8);
  TigerGenerator gen(params);
  StorageEnv env(256 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      StoredRelation r,
      LoadRelation(env.pool(), nullptr, "roads", gen.GenerateRoads(20)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      StoredRelation s,
      LoadRelation(env.pool(), nullptr, "hydro",
                   gen.GenerateHydrography(20)));

  MaterializedJoinView::Config config;
  config.name = "v";
  PBSM_ASSERT_OK_AND_ASSIGN(
      const auto view,
      MaterializedJoinView::Build(env.pool(), r.AsInput(), s.AsInput(),
                                  config));
  PBSM_ASSERT_OK_AND_ASSIGN(const LiveMap live_r, ScanLive(r.heap));
  ASSERT_FALSE(live_r.empty());
  const Oid existing = Oid::Decode(live_r.begin()->first);

  // Re-inserting a present OID is an error, not a silent overwrite.
  EXPECT_EQ(view->Insert(Side::kR, existing, live_r.begin()->second).code(),
            StatusCode::kInvalidArgument);
  // Deleting an unknown OID reports NotFound.
  EXPECT_EQ(view->Delete(Side::kS, Oid{9999, 77}).code(),
            StatusCode::kNotFound);
  // A real delete then succeeds and a second one reports NotFound.
  PBSM_ASSERT_OK(view->Delete(Side::kR, existing));
  EXPECT_EQ(view->Delete(Side::kR, existing).code(), StatusCode::kNotFound);
}

// The service endpoints around views: create + list + query, mutation with
// index-cache invalidation, and the drop-ordering contract with datasets.
TEST(JoinViewTest, ServiceViewEndpoints) {
  TigerGenerator::Params params;
  params.seed = 20260816;
  params.universe = Rect(params.universe.xlo, params.universe.ylo,
                         params.universe.xlo + params.universe.width() / 8,
                         params.universe.ylo + params.universe.height() / 8);
  TigerGenerator gen(params);
  std::vector<Tuple> roads = gen.GenerateRoads(80);
  std::vector<Tuple> hydro = gen.GenerateHydrography(60);
  std::vector<Tuple> extra = gen.GenerateRoads(90);

  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      StoredRelation r, LoadRelation(env.pool(), nullptr, "roads", roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      StoredRelation s, LoadRelation(env.pool(), nullptr, "hydro", hydro));

  JoinServiceConfig config;
  config.num_workers = 1;
  JoinService service(env.pool(), config);
  PBSM_ASSERT_OK(service.RegisterDataset("R", &r.heap, r.info));
  PBSM_ASSERT_OK(service.RegisterDataset("S", &s.heap, s.info));

  // Unknown datasets and duplicate names are rejected.
  EXPECT_EQ(service.CreateView("v", "R", "nope").code(),
            StatusCode::kNotFound);
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  PBSM_ASSERT_OK(service.CreateView("v", "R", "S"));
  EXPECT_EQ(service.CreateView("v", "R", "S").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().Delta(before).counter(
                "view.builds"),
            1u);
  EXPECT_EQ(service.ListViews(), std::vector<std::string>{"v"});

  // The view equals the join the service would run.
  JoinRequest request;
  request.r_dataset = "R";
  request.s_dataset = "S";
  request.method = JoinMethod::kPbsm;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse joined,
                            service.Execute(request));
  PairSet view_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const uint64_t num_pairs,
      service.QueryView("v", [&view_pairs](Oid ro, Oid so) {
        view_pairs.emplace(ro.Encode(), so.Encode());
      }));
  EXPECT_EQ(num_pairs, joined.num_results);
  EXPECT_EQ(view_pairs.size(), num_pairs);
  EXPECT_EQ(service.QueryView("ghost", {}).status().code(),
            StatusCode::kNotFound);

  // Warm the index cache, then mutate through the view: the cached tree
  // over the mutated dataset must be invalidated.
  request.method = JoinMethod::kRtree;
  PBSM_ASSERT_OK(service.Execute(request).status());
  ASSERT_EQ(service.cache().size(), 2u);  // One tree per side.
  const Tuple& added = extra.front();
  PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, r.heap.Append(added.Serialize()));
  PBSM_ASSERT_OK(service.ViewInsert("v", Side::kR, oid, added));
  EXPECT_EQ(service.cache().size(), 1u)
      << "view mutation must invalidate the cached index over the mutated "
         "side (and only that side)";

  // The mutation is visible to QueryView immediately.
  PBSM_ASSERT_OK_AND_ASSIGN(const uint64_t after_insert,
                            service.QueryView("v", {}));
  PBSM_ASSERT_OK(service.ViewDelete("v", Side::kR, oid));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint64_t after_delete,
                            service.QueryView("v", {}));
  EXPECT_EQ(after_delete, num_pairs);
  EXPECT_GE(after_insert, after_delete);

  // A dataset cannot be dropped out from under a view.
  EXPECT_EQ(service.DropDataset("R").code(), StatusCode::kFailedPrecondition);
  PBSM_ASSERT_OK(service.DropView("v"));
  EXPECT_EQ(service.DropView("v").code(), StatusCode::kNotFound);
  PBSM_ASSERT_OK(service.DropDataset("R"));
  service.Shutdown();
}

}  // namespace
}  // namespace pbsm
