#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "core/index_build.h"
#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "geom/predicates.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

ResultSink Collect(PairSet* out) {
  return [out](Oid r, Oid s) { out->emplace(r.Encode(), s.Encode()); };
}

/// Runs the facade and unwraps the per-phase cost breakdown, which is what
/// these tests assert on.
Result<JoinCostBreakdown> RunJoin(BufferPool* pool, const JoinInput& r,
                                  const JoinInput& s, const JoinSpec& spec) {
  PBSM_ASSIGN_OR_RETURN(JoinResult result, SpatialJoin(pool, r, s, spec));
  return std::move(result.breakdown);
}

JoinSpec MakeSpec(JoinMethod method, SpatialPredicate pred,
                  const JoinOptions& opts, ResultSink sink = {}) {
  JoinSpec spec;
  spec.method = method;
  spec.predicate = pred;
  spec.options = opts;
  spec.sink = std::move(sink);
  return spec;
}

/// Ground truth: nested loop over the raw tuples with exact predicates.
PairSet BruteForceJoin(const std::vector<Tuple>& r,
                       const std::vector<Tuple>& s, SpatialPredicate pred,
                       const StoredRelation& r_rel,
                       const StoredRelation& s_rel) {
  // Map tuple ids to OIDs by re-scanning the heap files.
  auto oids_by_position = [](const StoredRelation& rel) {
    std::vector<uint64_t> oids;
    EXPECT_TRUE(rel.heap
                    .Scan([&](Oid oid, const char*, size_t) -> Status {
                      oids.push_back(oid.Encode());
                      return Status::OK();
                    })
                    .ok());
    return oids;
  };
  const auto r_oids = oids_by_position(r_rel);
  const auto s_oids = oids_by_position(s_rel);
  PairSet out;
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = 0; j < s.size(); ++j) {
      if (EvaluatePredicate(pred, r[i].geometry, s[j].geometry,
                            SegmentTestMode::kPlaneSweep)) {
        out.emplace(r_oids[i], s_oids[j]);
      }
    }
  }
  return out;
}

class JoinEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 4242;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(1200);
    hydro_ = gen.GenerateHydrography(400);
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
};

TEST_F(JoinEquivalenceTest, AllAlgorithmsMatchBruteForce) {
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", roads_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro", hydro_));
  const PairSet expected = BruteForceJoin(
      roads_, hydro_, SpatialPredicate::kIntersects, roads, hydro);
  ASSERT_GT(expected.size(), 0u) << "test data produces no join results";

  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_tiles = 256;

  PairSet pbsm_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown pbsm_cost,
      RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
              MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kIntersects, opts,
                       Collect(&pbsm_pairs))));
  EXPECT_EQ(pbsm_pairs, expected);
  EXPECT_EQ(pbsm_cost.results, expected.size());
  EXPECT_GE(pbsm_cost.candidates, expected.size());

  // The facade restores (r, s) orientation for INL no matter which side it
  // indexes internally, so the pair set compares directly.
  PairSet inl_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown inl_cost,
      RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
              MakeSpec(JoinMethod::kInl, SpatialPredicate::kIntersects, opts,
                       Collect(&inl_pairs))));
  EXPECT_EQ(inl_pairs, expected);
  EXPECT_EQ(inl_cost.results, expected.size());

  PairSet rtree_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown rtree_cost,
      RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
              MakeSpec(JoinMethod::kRtree, SpatialPredicate::kIntersects, opts,
                       Collect(&rtree_pairs))));
  EXPECT_EQ(rtree_pairs, expected);
  EXPECT_EQ(rtree_cost.results, expected.size());
}

TEST_F(JoinEquivalenceTest, PbsmInvariantUnderKnobs) {
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", roads_));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro", hydro_));

  JoinOptions base;
  base.memory_budget_bytes = 1 << 20;
  base.num_tiles = 512;
  PairSet reference;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref_cost,
      RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
              MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kIntersects, base,
                       Collect(&reference))));
  (void)ref_cost;
  ASSERT_GT(reference.size(), 0u);

  // Sweep algorithm, mapping scheme, tile count, partition count, tiny
  // memory budgets (forcing §3.5 overflow handling), and the adaptive
  // refinement engine must not change the result set.
  struct Variant {
    const char* label;
    JoinOptions opts;
  };
  std::vector<Variant> variants;
  {
    JoinOptions o = base;
    o.sweep = SweepAlgorithm::kIntervalTreeSweep;
    variants.push_back({"interval tree sweep", o});
  }
  {
    JoinOptions o = base;
    o.mapping = TileMapping::kRoundRobin;
    variants.push_back({"round robin", o});
  }
  {
    JoinOptions o = base;
    o.num_tiles = 16;
    variants.push_back({"coarse tiles", o});
  }
  {
    JoinOptions o = base;
    o.num_partitions_override = 7;
    variants.push_back({"forced 7 partitions", o});
  }
  {
    JoinOptions o = base;
    o.memory_budget_bytes = 16 << 10;  // Forces repartitioning.
    variants.push_back({"tiny budget with repartition", o});
  }
  {
    JoinOptions o = base;
    o.memory_budget_bytes = 16 << 10;
    o.dynamic_repartition = false;  // Forces the chunked fallback.
    variants.push_back({"tiny budget chunked fallback", o});
  }
  {
    JoinOptions o = base;
    o.refinement_mode = SegmentTestMode::kNaive;
    variants.push_back({"naive refinement", o});
  }
  {
    JoinOptions o = base;
    o.refine = {.mode = RefineMode::kAdaptive};
    variants.push_back({"adaptive refinement", o});
  }

  for (const Variant& v : variants) {
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
                MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kIntersects,
                         v.opts, Collect(&got))));
    EXPECT_EQ(got, reference) << v.label;
    EXPECT_EQ(cost.results, reference.size()) << v.label;
  }
}

TEST_F(JoinEquivalenceTest, ClusteringDoesNotChangeResults) {
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", roads_, false));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro", hydro_, false));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads_cl,
      LoadRelation(env.pool(), nullptr, "road_cl", roads_, true));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro_cl,
      LoadRelation(env.pool(), nullptr, "hydro_cl", hydro_, true));

  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;

  auto result_count = [&](const StoredRelation& r,
                          const StoredRelation& s) -> uint64_t {
    auto res = SpatialJoin(env.pool(), r.AsInput(), s.AsInput(),
                           MakeSpec(JoinMethod::kPbsm,
                                    SpatialPredicate::kIntersects, opts));
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    return res.ok() ? res->num_results : 0;
  };
  EXPECT_EQ(result_count(roads, hydro), result_count(roads_cl, hydro_cl));
}

TEST_F(JoinEquivalenceTest, SmallBufferPoolsDoNotChangeResults) {
  // 16-frame pool: everything constantly evicted; results must not change.
  StorageEnv big(512 * kPageSize);
  StorageEnv tiny(16 * kPageSize);
  JoinOptions opts;
  opts.memory_budget_bytes = 256 << 10;

  uint64_t counts[2];
  StorageEnv* envs[2] = {&big, &tiny};
  for (int i = 0; i < 2; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation roads,
        LoadRelation(envs[i]->pool(), nullptr, "road", roads_));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation hydro,
        LoadRelation(envs[i]->pool(), nullptr, "hydro", hydro_));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(envs[i]->pool(), roads.AsInput(), hydro.AsInput(),
                MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kIntersects,
                         opts)));
    counts[i] = cost.results;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_GT(counts[0], 0u);
}

TEST(JoinPredicateTest, ContainmentJoinMatchesBruteForce) {
  StorageEnv env(512 * kPageSize);
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  const auto polys = gen.GeneratePolygons(200);
  const auto islands = gen.GenerateIslands(300);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation polys_rel,
      LoadRelation(env.pool(), nullptr, "poly", polys));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation islands_rel,
      LoadRelation(env.pool(), nullptr, "island", islands));
  const PairSet expected =
      BruteForceJoin(polys, islands, SpatialPredicate::kContains, polys_rel,
                     islands_rel);
  ASSERT_GT(expected.size(), 0u);

  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;

  for (const bool mer : {false, true}) {
    JoinOptions o = opts;
    o.use_mer_filter = mer;
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env.pool(), polys_rel.AsInput(), islands_rel.AsInput(),
                MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kContains, o,
                         Collect(&got))));
    EXPECT_EQ(got, expected) << "mer=" << mer;
    EXPECT_EQ(cost.results, expected.size());
  }

  // Adaptive refinement must certify containment conservatively: same set.
  {
    JoinOptions o = opts;
    o.refine = {.mode = RefineMode::kAdaptive};
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env.pool(), polys_rel.AsInput(), islands_rel.AsInput(),
                MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kContains, o,
                         Collect(&got))));
    EXPECT_EQ(got, expected);
    EXPECT_EQ(cost.results, expected.size());
  }

  // INL internally indexes the smaller input; the facade keeps the
  // containment predicate and result pairs oriented as (polys, islands).
  PairSet inl_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown inl_cost,
      RunJoin(env.pool(), polys_rel.AsInput(), islands_rel.AsInput(),
              MakeSpec(JoinMethod::kInl, SpatialPredicate::kContains, opts,
                       Collect(&inl_pairs))));
  EXPECT_EQ(inl_pairs, expected);
  EXPECT_EQ(inl_cost.results, expected.size());

  // The R-tree join agrees on containment too.
  PairSet rtree_pairs;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown rt,
      RunJoin(env.pool(), polys_rel.AsInput(), islands_rel.AsInput(),
              MakeSpec(JoinMethod::kRtree, SpatialPredicate::kContains, opts,
                       Collect(&rtree_pairs))));
  EXPECT_EQ(rtree_pairs, expected);
  (void)rt;
}

TEST(JoinPreexistingIndexTest, IndexVariantsMatch) {
  StorageEnv env(512 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  const auto roads = gen.GenerateRoads(800);
  const auto rail = gen.GenerateRail(150);
  PBSM_ASSERT_OK_AND_ASSIGN(const StoredRelation roads_rel,
                            LoadRelation(env.pool(), nullptr, "road", roads));
  PBSM_ASSERT_OK_AND_ASSIGN(const StoredRelation rail_rel,
                            LoadRelation(env.pool(), nullptr, "rail", rail));

  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;

  // Reference: no pre-existing indices.
  PairSet expected;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref,
      RunJoin(env.pool(), roads_rel.AsInput(), rail_rel.AsInput(),
              MakeSpec(JoinMethod::kRtree, SpatialPredicate::kIntersects,
                       opts, Collect(&expected))));
  (void)ref;

  // Pre-built indices.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree road_idx,
      BuildIndexByBulkLoad(env.pool(), roads_rel.AsInput(), "ri.rtree",
                           0.75));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree rail_idx,
      BuildIndexByBulkLoad(env.pool(), rail_rel.AsInput(), "si.rtree",
                           0.75));

  // R-tree join with both indices pre-existing: no build phases.
  PairSet both;
  JoinSpec both_spec =
      MakeSpec(JoinMethod::kRtree, SpatialPredicate::kIntersects, opts,
               Collect(&both));
  both_spec.r_index = &road_idx;
  both_spec.s_index = &rail_idx;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown rt2,
      RunJoin(env.pool(), roads_rel.AsInput(), rail_rel.AsInput(),
              both_spec));
  EXPECT_EQ(both, expected);
  EXPECT_EQ(rt2.phases.size(), 2u);  // join trees + refinement only.

  // R-tree join with one index pre-existing: exactly one build phase.
  PairSet one;
  JoinSpec one_spec =
      MakeSpec(JoinMethod::kRtree, SpatialPredicate::kIntersects, opts,
               Collect(&one));
  one_spec.r_index = &road_idx;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown rt1,
      RunJoin(env.pool(), roads_rel.AsInput(), rail_rel.AsInput(),
              one_spec));
  EXPECT_EQ(one, expected);
  EXPECT_EQ(rt1.phases.size(), 3u);

  // INL with a pre-existing index on rail: the facade probes with roads and
  // emits pairs in the caller's (roads, rail) orientation.
  PairSet inl;
  JoinSpec inl_spec = MakeSpec(JoinMethod::kInl,
                               SpatialPredicate::kIntersects, opts,
                               Collect(&inl));
  inl_spec.s_index = &rail_idx;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown inl_cost,
      RunJoin(env.pool(), roads_rel.AsInput(), rail_rel.AsInput(),
              inl_spec));
  // Probe + refinement: the operator engine splits INL into a candidate
  // producer and the shared refinement operator (the monolithic INL folded
  // the exact test into the probe phase).
  ASSERT_EQ(inl_cost.phases.size(), 2u);
  EXPECT_EQ(inl_cost.phases[0].first, "probe index");
  EXPECT_EQ(inl_cost.phases[1].first, "refinement");
  EXPECT_EQ(inl, expected);
}

TEST(JoinCostTest, BreakdownPhasesAreComplete) {
  // A deliberately tiny pool (16 frames) so the join must do physical I/O.
  StorageEnv env(16 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", gen.GenerateRoads(400)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro",
                   gen.GenerateHydrography(150)));
  JoinOptions opts;
  opts.memory_budget_bytes = 64 << 10;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env.pool(), roads.AsInput(), hydro.AsInput(),
              MakeSpec(JoinMethod::kPbsm, SpatialPredicate::kIntersects,
                       opts)));
  ASSERT_EQ(cost.phases.size(), 4u);
  EXPECT_EQ(cost.phases[0].first, "partition road");
  EXPECT_EQ(cost.phases[1].first, "partition hydro");
  EXPECT_EQ(cost.phases[2].first, "merge partitions");
  EXPECT_EQ(cost.phases[3].first, "refinement");
  // Partitioning wrote spools: physical writes must be recorded.
  EXPECT_GT(cost.phases[0].second.io.writes + cost.phases[1].second.io.writes,
            0u);
  EXPECT_GT(cost.Total().cpu_seconds, 0.0);
  EXPECT_GT(cost.Total().io.modeled_seconds, 0.0);
  EXPECT_GT(cost.num_partitions, 0u);
  EXPECT_GE(cost.num_tiles, cost.num_partitions);
}

}  // namespace
}  // namespace pbsm
