#include "geom/mer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "geom/predicates.h"

namespace pbsm {
namespace {

TEST(RectInsidePolygonTest, SquareCases) {
  const Geometry square =
      Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
  EXPECT_TRUE(RectInsidePolygon(Rect(2, 2, 8, 8), square));
  EXPECT_FALSE(RectInsidePolygon(Rect(-1, 2, 8, 8), square));
  EXPECT_FALSE(RectInsidePolygon(Rect(), square));
}

TEST(RectInsidePolygonTest, HoleRejectsCoveringRect) {
  const Geometry cheese =
      Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                             {{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  // Rect covering the hole is not inside the polygon area.
  EXPECT_FALSE(RectInsidePolygon(Rect(3, 3, 7, 7), cheese));
  // Rect clear of the hole is fine.
  EXPECT_TRUE(RectInsidePolygon(Rect(0.5, 0.5, 3, 3), cheese));
}

TEST(ComputeMerTest, SquarePolygonGetsNearFullMer) {
  const Geometry square =
      Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
  const Rect mer = ComputeMer(square);
  ASSERT_FALSE(mer.empty());
  EXPECT_TRUE(RectInsidePolygon(mer, square));
  // For a convex axis-aligned square the MER should be (nearly) the MBR.
  EXPECT_GT(mer.Area(), 0.95 * square.Mbr().Area());
}

TEST(ComputeMerTest, NonPolygonYieldsEmpty) {
  EXPECT_TRUE(ComputeMer(Geometry::MakePoint({0, 0})).empty());
  EXPECT_TRUE(
      ComputeMer(Geometry::MakePolyline({{0, 0}, {1, 1}})).empty());
}

class MerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MerPropertyTest, MerIsAlwaysEnclosed) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    // Star-shaped polygon around a random center.
    const Point c{rng.UniformDouble(-5, 5), rng.UniformDouble(-5, 5)};
    const int n = 8 + static_cast<int>(rng.Uniform(40));
    std::vector<Point> ring;
    for (int i = 0; i < n; ++i) {
      const double angle = 2 * M_PI * i / n;
      const double r = 1.0 + rng.NextDouble() * 2.0;
      ring.push_back(
          {c.x + std::cos(angle) * r, c.y + std::sin(angle) * r});
    }
    const Geometry poly = Geometry::MakePolygon({ring});
    const Rect mer = ComputeMer(poly);
    if (!mer.empty()) {
      EXPECT_TRUE(RectInsidePolygon(mer, poly)) << "iter " << iter;
      EXPECT_GT(mer.Area(), 0.0);
      // All four corners are in the polygon.
      EXPECT_TRUE(PointInPolygon(Point{mer.xlo, mer.ylo}, poly));
      EXPECT_TRUE(PointInPolygon(Point{mer.xhi, mer.yhi}, poly));
    }
  }
}

TEST_P(MerPropertyTest, MerEnablesCorrectContainmentShortcut) {
  // Anything whose MBR fits in the MER must be exactly contained.
  Rng rng(GetParam() + 1000);
  const Geometry poly = Geometry::MakePolygon(
      {{{0, 0}, {8, -2}, {12, 4}, {9, 10}, {2, 9}, {-2, 4}}});
  const Rect mer = ComputeMer(poly);
  ASSERT_FALSE(mer.empty());
  for (int iter = 0; iter < 100; ++iter) {
    // Random small polygon with MBR inside the MER.
    const double cx = rng.UniformDouble(mer.xlo + 0.3, mer.xhi - 0.3);
    const double cy = rng.UniformDouble(mer.ylo + 0.3, mer.yhi - 0.3);
    const double r = std::min({0.25, cx - mer.xlo, mer.xhi - cx,
                               cy - mer.ylo, mer.yhi - cy});
    std::vector<Point> ring;
    for (int i = 0; i < 8; ++i) {
      const double angle = 2 * M_PI * i / 8;
      ring.push_back({cx + std::cos(angle) * r, cy + std::sin(angle) * r});
    }
    const Geometry inner = Geometry::MakePolygon({ring});
    ASSERT_TRUE(mer.Contains(inner.Mbr()));
    EXPECT_TRUE(Contains(poly, inner)) << "iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MerPropertyTest, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace pbsm
