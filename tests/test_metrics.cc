#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"

namespace pbsm {
namespace {

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreLossless) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t) {
    for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
  });
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds 0; bucket b holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
  EXPECT_EQ(Histogram::BucketFor(~0ull), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8u - 1);  // Holds [4, 8).
}

TEST(HistogramTest, CountSumAndBuckets) {
  Histogram h;
  h.Record(0);
  h.Record(1);
  h.Record(5);
  h.Record(5);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 11u);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[0], 1u);                       // The 0.
  EXPECT_EQ(buckets[1], 1u);                       // The 1.
  EXPECT_EQ(buckets[Histogram::BucketFor(5)], 2u); // The two 5s.
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    for (uint64_t i = 0; i < kPerThread; ++i) h.Record(t);
  });
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) expected_sum += t * kPerThread;
  EXPECT_EQ(h.Sum(), expected_sum);
}

TEST(MetricsRegistryTest, LookupIsStableAndIdempotent) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.y.z");
  Counter* b = reg.GetCounter("x.y.z");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("x.y.other"), a);
  a->Add(7);
  EXPECT_EQ(reg.Snapshot().counter("x.y.z"), 7u);
}

TEST(MetricsRegistryTest, ConcurrentLookupAndBump) {
  MetricsRegistry reg;
  constexpr size_t kThreads = 8;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](size_t t) {
    // Half the threads race on the same name, half create their own.
    const std::string name =
        t % 2 == 0 ? "shared" : "own." + std::to_string(t);
    Counter* c = reg.GetCounter(name);
    for (int i = 0; i < 10000; ++i) c->Add();
  });
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("shared"), 4u * 10000u);
  EXPECT_EQ(snap.counter("own.1"), 10000u);
}

TEST(MetricsSnapshotTest, DeltaSubtractsCountersAndHistograms) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Histogram* h = reg.GetHistogram("h");
  c->Add(5);
  h->Record(8);
  const MetricsSnapshot before = reg.Snapshot();
  c->Add(3);
  h->Record(8);
  h->Record(16);
  const MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_EQ(delta.counter("c"), 3u);
  const auto it = delta.histograms.find("h");
  ASSERT_NE(it, delta.histograms.end());
  EXPECT_EQ(it->second.count, 2u);
}

TEST(MetricsSnapshotTest, ToJsonIsWellFormedAndStable) {
  MetricsRegistry reg;
  reg.GetCounter("a.b")->Add(2);
  reg.GetGauge("g")->Set(-4);
  reg.GetHistogram("h")->Record(3);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"a.b\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":-4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  // Single line, brace-balanced.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsNames) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(9);
  reg.GetHistogram("h")->Record(1);
  reg.ResetAll();
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(TraceTest, NestedSpansLinkToParents) {
  Tracer tracer;
  {
    TraceSpan outer("outer", &tracer);
    { TraceSpan inner("inner", &tracer); }
    { TraceSpan inner2("inner2", &tracer); }
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start time: outer first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[2].parent_id, spans[0].span_id);
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
}

TEST(TraceTest, SpansFromWorkerThreadsAllRecorded) {
  Tracer tracer;
  constexpr size_t kTasks = 64;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [&](size_t i) {
    TraceSpan span("task", &tracer);
    (void)i;
  });
  EXPECT_EQ(tracer.FinishedSpans().size(), kTasks);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  tracer.set_enabled(false);
  { TraceSpan span("ghost", &tracer); }
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST(TraceTest, JsonExportsContainSpans) {
  Tracer tracer;
  {
    TraceSpan outer("phase a", &tracer);
    TraceSpan inner("phase b", &tracer);
  }
  const std::string tree = tracer.SpanTreeJson();
  EXPECT_NE(tree.find("\"phase a\""), std::string::npos) << tree;
  EXPECT_NE(tree.find("\"children\""), std::string::npos) << tree;
  const std::string chrome = tracer.ChromeTraceJson();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos) << chrome;
}

TEST(TraceTest, ClearDiscardsHistory) {
  Tracer tracer;
  { TraceSpan span("s", &tracer); }
  tracer.Clear();
  EXPECT_TRUE(tracer.FinishedSpans().empty());
}

TEST(TraceTest, FlushOpenSpansMaterializesOpenTree) {
  // An export taken while spans are still open (cancellation exit, abort
  // handler) must see the open ancestors, correctly parented, not just
  // their finished children.
  Tracer tracer;
  {
    TraceSpan outer("outer", &tracer);
    {
      TraceSpan inner("inner", &tracer);
      { TraceSpan leaf("leaf", &tracer); }

      tracer.FlushOpenSpans();
      std::vector<SpanRecord> spans = tracer.FinishedSpans();
      ASSERT_EQ(spans.size(), 3u);
      EXPECT_EQ(spans[0].name, "outer");
      EXPECT_EQ(spans[0].parent_id, 0u);
      EXPECT_EQ(spans[1].name, "inner");
      EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
      EXPECT_EQ(spans[2].name, "leaf");
      EXPECT_EQ(spans[2].parent_id, spans[1].span_id);

      // A second flush extends the provisional records, never duplicates.
      tracer.FlushOpenSpans();
      EXPECT_EQ(tracer.FinishedSpans().size(), 3u);
    }
  }
  // Normal close finalizes the provisional records in place.
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
}

TEST(TraceTest, FlushedSpansSurviveClearWithoutStaleFinalize) {
  // Clear() between a flush and the close must not let the close write
  // through its now-stale provisional index.
  Tracer tracer;
  {
    TraceSpan outer("outer", &tracer);
    tracer.FlushOpenSpans();
    EXPECT_EQ(tracer.FinishedSpans().size(), 1u);
    tracer.Clear();
    EXPECT_TRUE(tracer.FinishedSpans().empty());
    { TraceSpan other("other", &tracer); }
  }
  const std::vector<SpanRecord> spans = tracer.FinishedSpans();
  ASSERT_EQ(spans.size(), 2u);
  // The re-closed outer span appends a fresh record.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "other");
}

}  // namespace
}  // namespace pbsm
