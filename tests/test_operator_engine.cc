// Operator-engine tests: the pull-based operator tree (src/exec) must be a
// drop-in replacement for the monolithic join paths — identical pair sets
// across every method and option axis — and the pieces only the engine
// provides (multi-way joins, mid-pipeline cancellation, per-operator
// metrics, explain) must hold their own contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/trace.h"
#include "core/parallel_pbsm.h"
#include "datagen/tiger_gen.h"
#include "exec/basic_ops.h"
#include "exec/plan_builder.h"
#include "service/join_service.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using IdTripleSet = std::set<std::tuple<uint64_t, uint64_t, uint64_t>>;

/// Deterministic three-relation corpus on a shrunken universe (the full
/// Wisconsin extent would make small joins near-empty and the tests
/// vacuous).
struct Corpus {
  std::vector<Tuple> roads;
  std::vector<Tuple> hydro;
  std::vector<Tuple> rail;
};

Corpus MakeCorpus(uint64_t seed, uint64_t n_roads, uint64_t n_hydro,
                  uint64_t n_rail) {
  TigerGenerator::Params params;
  params.seed = seed;
  params.universe = Rect(params.universe.xlo, params.universe.ylo,
                         params.universe.xlo + params.universe.width() / 8,
                         params.universe.ylo + params.universe.height() / 8);
  TigerGenerator gen(params);
  Corpus c;
  c.roads = gen.GenerateRoads(n_roads);
  c.hydro = gen.GenerateHydrography(n_hydro);
  c.rail = gen.GenerateRail(n_rail);
  return c;
}

/// Composes the pairwise oracle into the 3-way expectation: every base
/// pair (a, b) extended by each rail tuple matching the stage column under
/// the stage predicate — exactly the left-deep semantics of SpatialJoinOp.
IdTripleSet ComposedOracle(const Corpus& c, SpatialPredicate base_pred,
                           SpatialPredicate stage_pred,
                           uint32_t join_column) {
  IdTripleSet out;
  const IdPairSet base = BruteForceJoin(c.roads, c.hydro, base_pred);
  std::map<uint64_t, const Tuple*> roads_by_id, hydro_by_id;
  for (const Tuple& t : c.roads) roads_by_id[t.id] = &t;
  for (const Tuple& t : c.hydro) hydro_by_id[t.id] = &t;
  for (const auto& [rid, sid] : base) {
    const Tuple& col =
        join_column == 0 ? *roads_by_id.at(rid) : *hydro_by_id.at(sid);
    const Rect col_mbr = col.geometry.Mbr();
    for (const Tuple& t : c.rail) {
      if (!col_mbr.Intersects(t.geometry.Mbr())) continue;
      if (EvaluatePredicate(stage_pred, col.geometry, t.geometry,
                            SegmentTestMode::kNaive)) {
        out.emplace(rid, sid, t.id);
      }
    }
  }
  return out;
}

// The tentpole differential: the operator tree and the monolithic entry
// points must produce the exact same pair set for all six methods, crossed
// with both dedup schemes (PBSM family) and the result-preserving
// refinement modes. Identical-by-construction is the design goal; this is
// the check that it stayed true.
TEST(OperatorEngineTest, TreeMatchesMonolithAcrossMethodsAndModes) {
  const Corpus c = MakeCorpus(/*seed=*/20260808, 150, 120, 0);
  for (const SpatialPredicate pred :
       {SpatialPredicate::kIntersects, SpatialPredicate::kContains}) {
    SCOPED_TRACE(pred == SpatialPredicate::kIntersects ? "intersects"
                                                       : "contains");
    const IdPairSet oracle = BruteForceJoin(c.roads, c.hydro, pred);
    StorageEnv env(512 * kPageSize);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation r,
        LoadRelation(env.pool(), nullptr, "roads", c.roads));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const StoredRelation s,
        LoadRelation(env.pool(), nullptr, "hydro", c.hydro));

    for (const JoinMethod method : AllJoinMethods()) {
      SCOPED_TRACE(JoinMethodName(method));
      const bool pbsm_family = method == JoinMethod::kPbsm ||
                               method == JoinMethod::kParallelPbsm;
      std::vector<DedupMode> dedup_modes = {DedupMode::kTwoLayer};
      if (pbsm_family) dedup_modes.push_back(DedupMode::kMerge);
      for (const DedupMode dedup : dedup_modes) {
        SCOPED_TRACE(DedupModeName(dedup));
        for (const RefineMode refine :
             {RefineMode::kExact, RefineMode::kAdaptive}) {
          SCOPED_TRACE(RefineModeName(refine));
          JoinSpec spec;
          spec.method = method;
          spec.predicate = pred;
          spec.options.memory_budget_bytes = 1 << 20;
          spec.options.num_tiles = 64;
          spec.options.num_threads = 2;
          spec.options.dedup_mode = dedup;
          spec.options.refine.mode = refine;

          spec.engine = JoinEngine::kOperatorTree;
          PBSM_ASSERT_OK_AND_ASSIGN(
              const IdPairSet tree_pairs,
              RunJoinToIdPairs(env.pool(), r, s, spec));
          spec.engine = JoinEngine::kMonolith;
          PBSM_ASSERT_OK_AND_ASSIGN(
              const IdPairSet mono_pairs,
              RunJoinToIdPairs(env.pool(), r, s, spec));

          EXPECT_EQ(tree_pairs, mono_pairs);
          EXPECT_EQ(tree_pairs, oracle);
        }
      }
    }
  }
}

// 3-way join through nested SpatialJoinOps vs the composed pairwise
// brute-force oracle, on both joinable columns of the accumulated row.
TEST(OperatorEngineTest, MultiwayMatchesComposedOracle) {
  const Corpus c = MakeCorpus(/*seed=*/20260809, 120, 100, 90);
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "roads", c.roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro", c.hydro));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rail,
      LoadRelation(env.pool(), nullptr, "rail", c.rail));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto roads_ids, OidToIdMap(roads.heap));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto hydro_ids, OidToIdMap(hydro.heap));
  PBSM_ASSERT_OK_AND_ASSIGN(const auto rail_ids, OidToIdMap(rail.heap));

  for (const uint32_t join_column : {0u, 1u}) {
    SCOPED_TRACE("join_column=" + std::to_string(join_column));
    const IdTripleSet expected =
        ComposedOracle(c, SpatialPredicate::kIntersects,
                       SpatialPredicate::kIntersects, join_column);

    MultiwayJoinSpec spec;
    spec.first = roads.AsInput();
    spec.second = hydro.AsInput();
    spec.base.method = JoinMethod::kPbsm;
    spec.base.predicate = SpatialPredicate::kIntersects;
    spec.base.options.memory_budget_bytes = 1 << 20;
    spec.base.options.num_tiles = 64;
    MultiwayStage stage;
    stage.input = rail.AsInput();
    stage.predicate = SpatialPredicate::kIntersects;
    stage.join_column = join_column;
    spec.stages.push_back(stage);

    const std::unique_ptr<Operator> tree = BuildMultiwayTree(spec);
    ASSERT_EQ(tree->arity(), 3u);

    ExecContext ctx;
    ctx.pool = env.pool();
    IdTripleSet got;
    PBSM_ASSERT_OK(DriveTree(tree.get(), &ctx,
                             [&](const uint64_t* row, uint32_t arity) {
                               ASSERT_EQ(arity, 3u);
                               got.emplace(roads_ids.at(row[0]),
                                           hydro_ids.at(row[1]),
                                           rail_ids.at(row[2]));
                             }));
    EXPECT_EQ(got, expected);
    EXPECT_EQ(env.pool()->pinned_frames(), 0u);
  }
}

// Mid-pipeline cancellation: with tiny batches, cancel after k root
// batches for increasing k — the poll lands between batches at every
// stage of the 3-way pipeline as the operators advance through their
// streams. After the cancelled drive: no pinned frames, and the spans
// open at the moment of cancellation were flushed to finished records.
TEST(OperatorEngineTest, CancellationBetweenBatchesReleasesEverything) {
  const Corpus c = MakeCorpus(/*seed=*/20260810, 120, 100, 90);
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "roads", c.roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro", c.hydro));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rail,
      LoadRelation(env.pool(), nullptr, "rail", c.rail));

  MultiwayJoinSpec spec;
  spec.first = roads.AsInput();
  spec.second = hydro.AsInput();
  spec.base.method = JoinMethod::kPbsm;
  spec.base.predicate = SpatialPredicate::kIntersects;
  spec.base.options.memory_budget_bytes = 1 << 20;
  spec.base.options.num_tiles = 64;
  MultiwayStage stage;
  stage.input = rail.AsInput();
  stage.join_column = 1;
  spec.stages.push_back(stage);

  Tracer& tracer = Tracer::Global();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);

  for (const size_t cancel_after : {0u, 1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("cancel_after=" + std::to_string(cancel_after));
    const std::unique_ptr<Operator> tree = BuildMultiwayTree(spec);
    Canceller cancel;
    ExecContext ctx;
    ctx.pool = env.pool();
    ctx.cancel = &cancel;
    ctx.batch_rows = 4;  // Many batch boundaries at every pipeline depth.

    tracer.Clear();
    Status drive_status;
    {
      // An open outer span: cancellation must flush it to a finished
      // record even though this scope has not exited yet.
      TraceSpan outer("test/cancel_outer");
      PBSM_ASSERT_OK(tree->Open(&ctx));
      RowBatch batch;
      size_t batches = 0;
      while (true) {
        if (batches >= cancel_after) {
          cancel.Cancel(Status::Cancelled("test cancellation"));
        }
        Result<bool> more = tree->Next(&batch);
        if (!more.ok()) {
          drive_status = more.status();
          break;
        }
        if (!more.value()) break;
        ++batches;
      }
      ASSERT_EQ(drive_status.code(), StatusCode::kCancelled)
          << drive_status.ToString();

      bool outer_flushed = false;
      for (const SpanRecord& span : tracer.FinishedSpans()) {
        if (span.name == "test/cancel_outer") outer_flushed = true;
      }
      EXPECT_TRUE(outer_flushed)
          << "open spans were not flushed at cancellation";

      PBSM_ASSERT_OK(tree->Close());
    }
    EXPECT_EQ(env.pool()->pinned_frames(), 0u);
  }
  tracer.set_enabled(was_enabled);
}

// Every operator accounts its work into exec.<op>.* counters, and the
// facade's per-join metrics delta carries them.
TEST(OperatorEngineTest, ExecMetricsAccountBatchesAndRows) {
  const Corpus c = MakeCorpus(/*seed=*/20260811, 100, 80, 0);
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation r,
      LoadRelation(env.pool(), nullptr, "roads", c.roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation s,
      LoadRelation(env.pool(), nullptr, "hydro", c.hydro));

  JoinSpec spec;
  spec.method = JoinMethod::kPbsm;
  spec.engine = JoinEngine::kOperatorTree;
  spec.options.memory_budget_bytes = 1 << 20;
  uint64_t sink_pairs = 0;
  spec.sink = [&sink_pairs](Oid, Oid) { ++sink_pairs; };
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinResult result,
      SpatialJoin(env.pool(), r.AsInput(), s.AsInput(), spec));

  ASSERT_GT(result.num_results, 0u);
  EXPECT_EQ(sink_pairs, result.num_results);
  EXPECT_GE(result.metrics.counter("exec.filter_join.batches"), 1u);
  EXPECT_GE(result.metrics.counter("exec.refine.batches"), 1u);
  EXPECT_EQ(result.metrics.counter("exec.refine.rows_out"),
            result.num_results);
  EXPECT_GE(result.metrics.counter("exec.filter_join.rows_out"),
            result.num_results);
}

// The planner's costed operator tree and the service explain endpoint:
// plans are printable, line up with the exec-layer tree, and nothing
// executes (no index is built into the cache).
TEST(OperatorEngineTest, PlannerTreeAndServiceExplain) {
  const Corpus c = MakeCorpus(/*seed=*/20260812, 120, 90, 0);
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation r,
      LoadRelation(env.pool(), nullptr, "roads", c.roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation s,
      LoadRelation(env.pool(), nullptr, "hydro", c.hydro));

  // Planner level: the tree mirrors BuildJoinTree's shape.
  PlannerSide pr{&r.info, nullptr, false};
  PlannerSide ps{&s.info, nullptr, false};
  const PlanChoice plan = PlanJoin(pr, ps);
  ASSERT_FALSE(plan.operator_tree.empty());
  if (plan.method == JoinMethod::kParallelPbsm) {
    EXPECT_EQ(plan.operator_tree[0].op, "parallel_join");
  } else {
    ASSERT_EQ(plan.operator_tree.size(), 2u);
    EXPECT_EQ(plan.operator_tree[0].op, "refine");
    EXPECT_EQ(plan.operator_tree[0].depth, 0);
    EXPECT_EQ(plan.operator_tree[1].op, "filter_join");
    EXPECT_EQ(plan.operator_tree[1].depth, 1);
    EXPECT_GT(plan.operator_tree[1].est_rows, 0.0);
  }
  EXPECT_NE(plan.TreeString().find("rows~"), std::string::npos);

  // Service level: explain plans without executing.
  JoinServiceConfig config;
  config.num_workers = 1;
  JoinService service(env.pool(), config);
  PBSM_ASSERT_OK(service.RegisterDataset("R", &r.heap, r.info));
  PBSM_ASSERT_OK(service.RegisterDataset("S", &s.heap, s.info));

  JoinRequest request;
  request.r_dataset = "R";
  request.s_dataset = "S";
  PBSM_ASSERT_OK_AND_ASSIGN(const ExplainResult planned,
                            service.Explain(request));
  EXPECT_TRUE(planned.planner_chosen);
  EXPECT_FALSE(planned.plan.empty());
  EXPECT_FALSE(planned.cost_tree.empty());
  EXPECT_FALSE(planned.tree.empty());
  EXPECT_EQ(service.cache().size(), 0u) << "explain must not build indexes";

  request.method = JoinMethod::kPbsm;
  PBSM_ASSERT_OK_AND_ASSIGN(const ExplainResult forced,
                            service.Explain(request));
  EXPECT_FALSE(forced.planner_chosen);
  EXPECT_NE(forced.tree.find("pbsm filter"), std::string::npos);

  request.window = Rect(0, 0, 1, 1);
  PBSM_ASSERT_OK_AND_ASSIGN(const ExplainResult windowed,
                            service.Explain(request));
  EXPECT_NE(windowed.tree.find("select"), std::string::npos);

  request.r_dataset = "missing";
  EXPECT_EQ(service.Explain(request).status().code(), StatusCode::kNotFound);
  service.Shutdown();
}

// Regression (issue satellite): the legacy SimulateParallelPbsm entry
// point bypassed the facade and with it the join.failures.<method>
// accounting. It must now route every non-OK return through
// CountJoinFailure like a facade-dispatched join.
TEST(OperatorEngineTest, LegacyParallelEntryCountsFailures) {
  const Corpus c = MakeCorpus(/*seed=*/20260813, 40, 30, 0);
  StorageEnv env(256 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation r,
      LoadRelation(env.pool(), nullptr, "roads", c.roads));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation s,
      LoadRelation(env.pool(), nullptr, "hydro", c.hydro));

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ParallelPbsmOptions options;
  options.num_workers = 0;  // Invalid: rejected before any work happens.
  const auto report = SimulateParallelPbsm(env.pool(), r.AsInput(),
                                           s.AsInput(),
                                           SpatialPredicate::kIntersects,
                                           options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().Delta(before);
  EXPECT_EQ(delta.counter("join.failures.parallel_pbsm"), 1u);
  EXPECT_EQ(delta.counter("join.cancelled.parallel_pbsm"), 0u);
}

}  // namespace
}  // namespace pbsm
