#include "core/parallel_pbsm.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

class ParallelPbsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));

    // Serial reference result (by original OIDs).
    JoinSpec spec;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.sink = [&](Oid r, Oid s) {
      expected_.emplace(r.Encode(), s.Encode());
    };
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinResult joined,
        SpatialJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                    spec));
    (void)joined;
    ASSERT_GT(expected_.size(), 0u);
  }

  PairSet RunParallel(uint32_t workers, uint32_t tiles, bool full_repl) {
    ParallelPbsmOptions opts;
    opts.num_workers = workers;
    opts.num_tiles = tiles;
    opts.replicate_full_objects = full_repl;
    opts.join.memory_budget_bytes = 1 << 20;
    PairSet got;
    auto report = SimulateParallelPbsm(
        env_->pool(), roads_->AsInput(), hydro_->AsInput(),
        SpatialPredicate::kIntersects, opts,
        [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); });
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    if (report.ok()) {
      EXPECT_EQ(report->results, got.size());
      EXPECT_EQ(report->workers.size(), workers);
      uint64_t assigned_r = 0;
      for (const auto& w : report->workers) assigned_r += w.r_tuples;
      // Every tuple is assigned at least once; replication adds copies.
      EXPECT_EQ(assigned_r,
                roads_->info.cardinality + report->replicated_r);
      EXPECT_GT(report->ParallelSeconds(), 0.0);
      EXPECT_GE(report->TotalWorkSeconds(), report->ParallelSeconds());
      EXPECT_GE(report->Speedup(), 1.0);
    }
    return got;
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
  PairSet expected_;
};

TEST_F(ParallelPbsmTest, SingleWorkerMatchesSerialJoin) {
  EXPECT_EQ(RunParallel(1, 64, true), expected_);
}

TEST_F(ParallelPbsmTest, FullReplicationMatchesAcrossWorkerCounts) {
  for (const uint32_t workers : {2u, 4u, 7u}) {
    EXPECT_EQ(RunParallel(workers, 256, true), expected_)
        << workers << " workers";
  }
}

TEST_F(ParallelPbsmTest, MbrOnlyReplicationMatches) {
  for (const uint32_t workers : {2u, 5u}) {
    EXPECT_EQ(RunParallel(workers, 256, false), expected_)
        << workers << " workers";
  }
}

TEST_F(ParallelPbsmTest, CoarseDeclusteringStillCorrect) {
  // One tile per worker (the TY95-style declustering the paper critiques).
  EXPECT_EQ(RunParallel(4, 4, true), expected_);
}

TEST_F(ParallelPbsmTest, ZeroWorkersRejected) {
  ParallelPbsmOptions opts;
  opts.num_workers = 0;
  auto report = SimulateParallelPbsm(env_->pool(), roads_->AsInput(),
                                     hydro_->AsInput(),
                                     SpatialPredicate::kIntersects, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParallelPbsmTest, MbrOnlyCountsRemoteFetches) {
  ParallelPbsmOptions opts;
  opts.num_workers = 3;
  opts.replicate_full_objects = false;
  opts.join.memory_budget_bytes = 1 << 20;
  auto report = SimulateParallelPbsm(env_->pool(), roads_->AsInput(),
                                     hydro_->AsInput(),
                                     SpatialPredicate::kIntersects, opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  uint64_t remote = 0;
  for (const auto& w : report->workers) remote += w.remote_fetches;
  EXPECT_GT(remote, 0u);

  // Full replication performs no remote fetches.
  opts.replicate_full_objects = true;
  auto full = SimulateParallelPbsm(env_->pool(), roads_->AsInput(),
                                   hydro_->AsInput(),
                                   SpatialPredicate::kIntersects, opts);
  ASSERT_TRUE(full.ok());
  for (const auto& w : full->workers) EXPECT_EQ(w.remote_fetches, 0u);
}

}  // namespace
}  // namespace pbsm
