#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <utility>

#include "common/thread_pool.h"
#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool tp(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    tp.Submit([&count] { count.fetch_add(1); });
  }
  tp.Wait();
  EXPECT_EQ(count.load(), 1000);
  // The pool is reusable for a second batch.
  tp.ParallelFor(64, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1064);
}

TEST(ThreadPoolTest, WorkStealingDrainsImbalancedQueues) {
  // One long task + many short ones: the short ones must finish via steals
  // while the long task's home worker is busy.
  ThreadPool tp(4);
  std::atomic<int> done{0};
  tp.Submit([&] {
    // Busy-wait until the short tasks are done (steals make this finite).
    while (done.load() < 100) std::this_thread::yield();
  });
  for (int i = 0; i < 100; ++i) {
    tp.Submit([&done] { done.fetch_add(1); });
  }
  tp.Wait();
  EXPECT_EQ(done.load(), 100);
}

class ParallelPbsmExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));
  }

  /// Runs the parallel executor through the facade.
  Result<JoinResult> RunParallel(const JoinOptions& opts,
                                 PairSet* pairs = nullptr,
                                 ParallelJoinStats* stats = nullptr) {
    JoinSpec spec;
    spec.method = JoinMethod::kParallelPbsm;
    spec.options = opts;
    spec.parallel_stats = stats;
    if (pairs != nullptr) {
      spec.sink = [pairs](Oid r, Oid s) {
        pairs->emplace(r.Encode(), s.Encode());
      };
    }
    return SpatialJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                       spec);
  }

  PairSet SerialReference(SweepAlgorithm sweep, size_t budget) {
    JoinSpec spec;
    spec.options.memory_budget_bytes = budget;
    spec.options.sweep = sweep;
    PairSet expected;
    spec.sink = [&](Oid r, Oid s) {
      expected.emplace(r.Encode(), s.Encode());
    };
    auto result = SpatialJoin(env_->pool(), roads_->AsInput(),
                              hydro_->AsInput(), spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(expected.size(), 0u);
    return expected;
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
};

TEST_F(ParallelPbsmExecTest, MatchesSerialAcrossThreadCountsAndSweeps) {
  for (const SweepAlgorithm sweep :
       {SweepAlgorithm::kForwardSweep, SweepAlgorithm::kIntervalTreeSweep}) {
    const PairSet expected = SerialReference(sweep, 1 << 20);
    for (const uint32_t threads : {1u, 2u, 8u}) {
      JoinOptions opts;
      opts.memory_budget_bytes = 1 << 20;
      opts.sweep = sweep;
      opts.num_threads = threads;
      PairSet got;
      ParallelJoinStats stats;
      auto result = RunParallel(opts, &got, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(got, expected)
          << threads << " threads, sweep " << static_cast<int>(sweep);
      // The sink saw each de-duplicated pair exactly once.
      EXPECT_EQ(result->num_results, got.size());
      EXPECT_EQ(stats.num_threads, threads);
      EXPECT_EQ(stats.worker_busy_seconds.size(), threads);
      EXPECT_GT(stats.TotalBusySeconds(), 0.0);
      // TotalBusySeconds sums per-task timings while the denominator is
      // per-worker busy time, which also covers timer and queue overhead
      // between tasks — so the ratio can land epsilon below 1.0.
      EXPECT_GE(stats.CriticalPathSpeedup(), 0.95);
    }
  }
}

TEST_F(ParallelPbsmExecTest, TinyBudgetTriggersRepartitioning) {
  const PairSet expected =
      SerialReference(SweepAlgorithm::kForwardSweep, 1 << 20);
  JoinOptions opts;
  // One partition holding everything + a budget far below its key-pointer
  // footprint forces the in-memory §3.5 repartition path, which only the
  // merge-dedup mode has (two-layer partitions are processed whole).
  opts.dedup_mode = DedupMode::kMerge;
  opts.memory_budget_bytes = 16 << 10;
  opts.num_partitions_override = 1;
  opts.num_threads = 4;
  PairSet got;
  auto result = RunParallel(opts, &got);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->breakdown.repartitioned_pairs, 0u);
  EXPECT_EQ(got, expected);
}

TEST_F(ParallelPbsmExecTest, DefaultThreadCountUsesHardwareConcurrency) {
  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_threads = 0;  // Hardware concurrency.
  ParallelJoinStats stats;
  auto result = RunParallel(opts, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(stats.num_threads, ThreadPool::DefaultThreads());
  EXPECT_GT(result->num_results, 0u);
}

TEST_F(ParallelPbsmExecTest, PartitionOverrideIsRespected) {
  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_threads = 2;
  opts.num_partitions_override = 3;
  auto result = RunParallel(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->breakdown.num_partitions, 3u);
}

TEST_F(ParallelPbsmExecTest, CostBreakdownHasAllPhases) {
  // Default (two-layer) mode: no merge phase exists — its absence from the
  // breakdown is the observable contract of duplicate-free filtering.
  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_threads = 2;
  ParallelJoinStats stats;
  auto result = RunParallel(opts, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JoinCostBreakdown& cost = result->breakdown;
  ASSERT_EQ(cost.phases.size(), 3u);
  EXPECT_EQ(cost.phases[0].first, "partition inputs");
  EXPECT_EQ(cost.phases[1].first, "filter partitions");
  EXPECT_EQ(cost.phases[2].first, "refinement");
  EXPECT_GT(cost.candidates, 0u);
  EXPECT_EQ(cost.duplicates_removed, 0u);
  EXPECT_EQ(stats.merge_wall_seconds, 0.0);
  EXPECT_GT(cost.Total().cpu_seconds, 0.0);
}

TEST_F(ParallelPbsmExecTest, MergeModeCostBreakdownHasMergePhase) {
  JoinOptions opts;
  opts.dedup_mode = DedupMode::kMerge;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_threads = 2;
  auto result = RunParallel(opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const JoinCostBreakdown& cost = result->breakdown;
  ASSERT_EQ(cost.phases.size(), 4u);
  EXPECT_EQ(cost.phases[0].first, "partition inputs");
  EXPECT_EQ(cost.phases[1].first, "sweep partitions");
  EXPECT_EQ(cost.phases[2].first, "merge candidates");
  EXPECT_EQ(cost.phases[3].first, "refinement");
  EXPECT_GT(cost.candidates, 0u);
  EXPECT_GT(cost.Total().cpu_seconds, 0.0);
}

}  // namespace
}  // namespace pbsm
