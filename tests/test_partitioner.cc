#include "core/spatial_partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/key_pointer.h"

namespace pbsm {
namespace {

TEST(PartitionerTest, GridShapeMatchesRequest) {
  const Rect u(0, 0, 100, 100);
  const SpatialPartitioner p16(u, 16, 4, TileMapping::kRoundRobin);
  EXPECT_EQ(p16.grid_nx(), 4u);
  EXPECT_EQ(p16.grid_ny(), 4u);
  EXPECT_EQ(p16.num_tiles(), 16u);

  // Non-square request rounds up to a full grid.
  const SpatialPartitioner p12(u, 12, 3, TileMapping::kRoundRobin);
  EXPECT_GE(p12.num_tiles(), 12u);
  EXPECT_EQ(p12.grid_nx() * p12.grid_ny(), p12.num_tiles());
}

TEST(PartitionerTest, TileNumberingStartsAtUpperLeft) {
  // Figure 3: tiles are numbered row-major from the upper-left corner.
  const Rect u(0, 0, 4, 3);
  const SpatialPartitioner p(u, 12, 3, TileMapping::kRoundRobin);
  ASSERT_EQ(p.grid_nx(), 4u);
  ASSERT_EQ(p.grid_ny(), 3u);
  EXPECT_EQ(p.TileFor(0.5, 2.5), 0u);   // Top-left cell.
  EXPECT_EQ(p.TileFor(3.5, 2.5), 3u);   // Top-right cell.
  EXPECT_EQ(p.TileFor(0.5, 0.5), 8u);   // Bottom-left cell.
  EXPECT_EQ(p.TileFor(3.5, 0.5), 11u);  // Bottom-right cell.
}

TEST(PartitionerTest, RoundRobinMatchesPaperFigure3) {
  // 12 tiles, 3 partitions, round robin: tiles 0,3,6,9 -> partition 0;
  // 1,4,7,10 -> 1; 2,5,8,11 -> 2.
  const Rect u(0, 0, 4, 3);
  const SpatialPartitioner p(u, 12, 3, TileMapping::kRoundRobin);
  EXPECT_EQ(p.PartitionOfTile(0), 0u);
  EXPECT_EQ(p.PartitionOfTile(3), 0u);
  EXPECT_EQ(p.PartitionOfTile(6), 0u);
  EXPECT_EQ(p.PartitionOfTile(9), 0u);
  EXPECT_EQ(p.PartitionOfTile(1), 1u);
  EXPECT_EQ(p.PartitionOfTile(10), 1u);
  EXPECT_EQ(p.PartitionOfTile(2), 2u);
  EXPECT_EQ(p.PartitionOfTile(11), 2u);

  // An MBR spanning tiles 0, 1 and 2 is replicated to all three partitions
  // (the paper's Figure 3 example object).
  std::vector<uint32_t> parts;
  p.PartitionsFor(Rect(0.2, 2.2, 2.8, 2.8), &parts);
  EXPECT_EQ(parts, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(PartitionerTest, SmallMbrMapsToOnePartition) {
  const Rect u(0, 0, 100, 100);
  const SpatialPartitioner p(u, 64, 8, TileMapping::kHash);
  std::vector<uint32_t> parts;
  p.PartitionsFor(Rect(10.1, 10.1, 10.2, 10.2), &parts);
  EXPECT_EQ(parts.size(), 1u);
  EXPECT_LT(parts[0], 8u);
}

TEST(PartitionerTest, UniverseSpanningMbrHitsAllPartitions) {
  const Rect u(0, 0, 100, 100);
  const SpatialPartitioner p(u, 16, 4, TileMapping::kRoundRobin);
  std::vector<uint32_t> parts;
  p.PartitionsFor(u, &parts);
  EXPECT_EQ(parts, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(PartitionerTest, OutOfUniverseClampsToBorder) {
  const Rect u(0, 0, 100, 100);
  const SpatialPartitioner p(u, 16, 4, TileMapping::kRoundRobin);
  std::vector<uint32_t> parts, border;
  p.PartitionsFor(Rect(-50, -50, -40, -40), &parts);
  p.PartitionsFor(Rect(0, 0, 1, 1), &border);
  EXPECT_EQ(parts, border);
}

TEST(PartitionerTest, EquationOneMatchesPaperFormula) {
  // P = ceil((|R| + |S|) * size_keyptr / M).
  EXPECT_EQ(SpatialPartitioner::EstimatePartitionCount(0, 0, 1 << 20), 1u);
  EXPECT_EQ(SpatialPartitioner::EstimatePartitionCount(100, 100, 1 << 20),
            1u);
  const uint64_t r = 456613, s = 122149;
  const size_t m = 16u << 20;
  const uint32_t expected = static_cast<uint32_t>(
      std::ceil((r + s) * sizeof(KeyPointer) / static_cast<double>(m)));
  EXPECT_EQ(SpatialPartitioner::EstimatePartitionCount(r, s, m), expected);
  EXPECT_GT(expected, 1u);
}

TEST(PartitionerTest, EveryTileMapsToValidPartition) {
  const Rect u(0, 0, 10, 10);
  for (const auto mapping : {TileMapping::kRoundRobin, TileMapping::kHash}) {
    const SpatialPartitioner p(u, 100, 7, mapping);
    std::set<uint32_t> used;
    for (uint32_t t = 0; t < p.num_tiles(); ++t) {
      const uint32_t part = p.PartitionOfTile(t);
      EXPECT_LT(part, 7u);
      used.insert(part);
    }
    // With 100 tiles over 7 partitions every partition receives tiles.
    EXPECT_EQ(used.size(), 7u);
  }
}

class PartitionerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionerPropertyTest, PartitionsForCoversEveryOverlappingTile) {
  Rng rng(GetParam());
  const Rect u(0, 0, 50, 50);
  const SpatialPartitioner p(u, 256, 16, TileMapping::kHash);
  for (int iter = 0; iter < 500; ++iter) {
    const double x = rng.UniformDouble(0, 50);
    const double y = rng.UniformDouble(0, 50);
    const Rect mbr(x, y, x + rng.NextDouble() * 10, y + rng.NextDouble() * 10);
    std::vector<uint32_t> parts;
    p.PartitionsFor(mbr, &parts);
    // Brute force: sample a fine lattice of points in the MBR; each point's
    // tile partition must be in the returned set.
    std::set<uint32_t> got(parts.begin(), parts.end());
    for (int i = 0; i <= 10; ++i) {
      for (int j = 0; j <= 10; ++j) {
        const double px = mbr.xlo + (mbr.xhi - mbr.xlo) * i / 10;
        const double py = mbr.ylo + (mbr.yhi - mbr.ylo) * j / 10;
        const uint32_t part = p.PartitionOfTile(p.TileFor(px, py));
        EXPECT_TRUE(got.count(part))
            << "missing partition for point in MBR, iter " << iter;
      }
    }
    // Sorted and unique.
    EXPECT_TRUE(std::is_sorted(parts.begin(), parts.end()));
    EXPECT_EQ(std::set<uint32_t>(parts.begin(), parts.end()).size(),
              parts.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerPropertyTest,
                         ::testing::Values(13, 17, 19));

}  // namespace
}  // namespace pbsm
