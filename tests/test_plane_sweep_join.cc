#include "core/plane_sweep_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

PairSet RunJoin(std::vector<KeyPointer> r, std::vector<KeyPointer> s,
                SweepAlgorithm algo) {
  PairSet out;
  PlaneSweepJoin(
      &r, &s,
      [&](uint64_t a, uint64_t b) { out.emplace(a, b); },
      algo);
  return out;
}

std::vector<KeyPointer> RandomRects(Rng* rng, size_t n, double extent,
                                    double max_size, uint64_t oid_base) {
  std::vector<KeyPointer> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->UniformDouble(0, extent);
    const double y = rng->UniformDouble(0, extent);
    out.push_back(KeyPointer{
        Rect(x, y, x + rng->NextDouble() * max_size,
             y + rng->NextDouble() * max_size),
        oid_base + i});
  }
  return out;
}

TEST(PlaneSweepJoinTest, EmptyInputs) {
  std::vector<KeyPointer> r, s;
  EXPECT_EQ(PlaneSweepJoin(&r, &s, [](uint64_t, uint64_t) {}), 0u);
  r.push_back(KeyPointer{Rect(0, 0, 1, 1), 1});
  std::vector<KeyPointer> empty;
  EXPECT_EQ(PlaneSweepJoin(&r, &empty, [](uint64_t, uint64_t) {}), 0u);
}

TEST(PlaneSweepJoinTest, HandComputedCase) {
  std::vector<KeyPointer> r = {{Rect(0, 0, 2, 2), 1},
                               {Rect(5, 5, 6, 6), 2}};
  std::vector<KeyPointer> s = {{Rect(1, 1, 3, 3), 10},
                               {Rect(2, 2, 4, 4), 20},   // Touches r1.
                               {Rect(7, 7, 8, 8), 30}};  // No partner.
  const PairSet expected = {{1, 10}, {1, 20}};
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kForwardSweep), expected);
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kIntervalTreeSweep), expected);
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kNestedLoops), expected);
}

TEST(PlaneSweepJoinTest, EmitsPairsInRSOrder) {
  // The emitter always receives (r_oid, s_oid) regardless of which side
  // drives the sweep step.
  std::vector<KeyPointer> r = {{Rect(1, 0, 3, 1), 7}};
  std::vector<KeyPointer> s = {{Rect(0, 0, 2, 1), 1000}};  // s starts first.
  const PairSet out = RunJoin(r, s, SweepAlgorithm::kForwardSweep);
  EXPECT_EQ(out, (PairSet{{7, 1000}}));
}

TEST(PlaneSweepJoinTest, IdenticalRectanglesAllPair) {
  std::vector<KeyPointer> r, s;
  for (uint64_t i = 0; i < 10; ++i) {
    r.push_back({Rect(0, 0, 1, 1), i});
    s.push_back({Rect(0, 0, 1, 1), 100 + i});
  }
  for (const auto algo :
       {SweepAlgorithm::kForwardSweep, SweepAlgorithm::kIntervalTreeSweep}) {
    EXPECT_EQ(RunJoin(r, s, algo).size(), 100u);
  }
}

TEST(PlaneSweepJoinTest, PointRectanglesTouchCount) {
  // Degenerate (zero-area) MBRs — points — touching an edge.
  std::vector<KeyPointer> r = {{Rect(1, 1, 1, 1), 1}};
  std::vector<KeyPointer> s = {{Rect(1, 1, 2, 2), 2},
                               {Rect(1.5, 1.5, 1.5, 1.5), 3}};
  const PairSet expected = {{1, 2}};
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kForwardSweep), expected);
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kIntervalTreeSweep), expected);
}

struct SweepCase {
  uint64_t seed;
  size_t nr;
  size_t ns;
  double max_size;  // Rect size relative to a 100x100 extent.
};

class PlaneSweepPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PlaneSweepPropertyTest, AllAlgorithmsMatchNestedLoops) {
  const SweepCase& c = GetParam();
  Rng rng(c.seed);
  const auto r = RandomRects(&rng, c.nr, 100.0, c.max_size, 0);
  const auto s = RandomRects(&rng, c.ns, 100.0, c.max_size, 1 << 20);
  const PairSet expected = RunJoin(r, s, SweepAlgorithm::kNestedLoops);
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kForwardSweep), expected);
  EXPECT_EQ(RunJoin(r, s, SweepAlgorithm::kIntervalTreeSweep), expected);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, PlaneSweepPropertyTest,
    ::testing::Values(SweepCase{1, 50, 50, 5.0},
                      SweepCase{2, 200, 200, 2.0},
                      SweepCase{3, 500, 100, 10.0},
                      SweepCase{4, 1, 500, 50.0},
                      SweepCase{5, 300, 300, 0.5},
                      SweepCase{6, 100, 100, 100.0},  // Huge overlap.
                      SweepCase{7, 1000, 1000, 1.0}));

TEST(PlaneSweepJoinTest, ReturnsEmittedCount) {
  Rng rng(9);
  auto r = RandomRects(&rng, 100, 50, 5, 0);
  auto s = RandomRects(&rng, 100, 50, 5, 1000);
  uint64_t emitted = 0;
  const uint64_t reported =
      PlaneSweepJoin(&r, &s, [&](uint64_t, uint64_t) { ++emitted; });
  EXPECT_EQ(reported, emitted);
}

}  // namespace
}  // namespace pbsm
