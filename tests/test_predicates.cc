#include "geom/predicates.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "geom/geometry.h"

namespace pbsm {
namespace {

Geometry UnitSquare() {
  return Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}}});
}

Geometry SwissCheese() {
  // 10x10 square with a 2x2 hole centered at (5, 5).
  return Geometry::MakePolygon({{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                                {{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
}

TEST(PointInRingTest, InsideOutsideBoundary) {
  const std::vector<Point> ring = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_TRUE(PointInRing({5, 5}, ring));
  EXPECT_FALSE(PointInRing({-1, 5}, ring));
  EXPECT_FALSE(PointInRing({11, 5}, ring));
  EXPECT_TRUE(PointInRing({0, 5}, ring));    // On edge.
  EXPECT_TRUE(PointInRing({10, 10}, ring));  // On vertex.
}

TEST(PointInRingTest, ConcaveRing) {
  // A "U" shape: the notch interior is outside.
  const std::vector<Point> ring = {{0, 0}, {10, 0}, {10, 10}, {7, 10},
                                   {7, 3},  {3, 3},  {3, 10},  {0, 10}};
  EXPECT_TRUE(PointInRing({1, 5}, ring));    // Left arm.
  EXPECT_TRUE(PointInRing({8, 5}, ring));    // Right arm.
  EXPECT_FALSE(PointInRing({5, 5}, ring));   // The notch.
  EXPECT_TRUE(PointInRing({5, 1}, ring));    // The base.
}

TEST(PointInPolygonTest, HolesExcludeInterior) {
  const Geometry g = SwissCheese();
  EXPECT_TRUE(PointInPolygon({1, 1}, g));
  EXPECT_FALSE(PointInPolygon({5, 5}, g));   // Strictly inside the hole.
  EXPECT_TRUE(PointInPolygon({4, 5}, g));    // On the hole boundary.
  EXPECT_FALSE(PointInPolygon({-1, -1}, g));
}

TEST(SegmentSetsIntersectTest, NaiveAndSweepAgreeOnHandCases) {
  const std::vector<Segment> red = {{{0, 0}, {5, 5}}, {{6, 0}, {9, 0}}};
  const std::vector<Segment> blue_hit = {{{0, 5}, {5, 0}}};
  const std::vector<Segment> blue_miss = {{{20, 20}, {30, 30}}};
  for (const auto mode :
       {SegmentTestMode::kNaive, SegmentTestMode::kPlaneSweep}) {
    EXPECT_TRUE(SegmentSetsIntersect(red, blue_hit, mode));
    EXPECT_FALSE(SegmentSetsIntersect(red, blue_miss, mode));
    EXPECT_FALSE(SegmentSetsIntersect({}, blue_hit, mode));
    EXPECT_FALSE(SegmentSetsIntersect(red, {}, mode));
  }
}

TEST(IntersectsTest, PointCases) {
  const Geometry p = Geometry::MakePoint({5, 5});
  EXPECT_TRUE(Intersects(p, Geometry::MakePoint({5, 5})));
  EXPECT_FALSE(Intersects(p, Geometry::MakePoint({5, 6})));
  const Geometry line = Geometry::MakePolyline({{0, 0}, {10, 10}});
  EXPECT_TRUE(Intersects(p, line));
  EXPECT_TRUE(Intersects(line, p));  // Symmetric dispatch.
  EXPECT_FALSE(Intersects(Geometry::MakePoint({5, 6}), line));
  EXPECT_TRUE(Intersects(p, UnitSquare()));
  EXPECT_FALSE(Intersects(Geometry::MakePoint({5, 5}), SwissCheese()));
}

TEST(IntersectsTest, PolylinePolyline) {
  const Geometry a = Geometry::MakePolyline({{0, 0}, {10, 10}});
  const Geometry b = Geometry::MakePolyline({{0, 10}, {10, 0}});
  const Geometry c = Geometry::MakePolyline({{20, 20}, {30, 30}});
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
  // MBRs overlap but the chains do not touch.
  const Geometry d = Geometry::MakePolyline({{0, 9}, {4, 9.5}, {0, 9.8}});
  const Geometry e = Geometry::MakePolyline({{5, 0}, {6, 9}, {7, 0}});
  EXPECT_FALSE(Intersects(d, e));
}

TEST(IntersectsTest, PolylinePolygon) {
  const Geometry square = UnitSquare();
  // Crossing the boundary.
  EXPECT_TRUE(Intersects(Geometry::MakePolyline({{-5, 5}, {5, 5}}), square));
  // Entirely inside.
  EXPECT_TRUE(Intersects(Geometry::MakePolyline({{1, 1}, {2, 2}}), square));
  // Entirely outside.
  EXPECT_FALSE(
      Intersects(Geometry::MakePolyline({{20, 20}, {30, 30}}), square));
  // Entirely within the hole: no intersection with the swiss cheese.
  EXPECT_FALSE(Intersects(Geometry::MakePolyline({{4.5, 4.8}, {5.5, 5.2}}),
                          SwissCheese()));
}

TEST(IntersectsTest, PolygonPolygon) {
  const Geometry a = UnitSquare();
  const Geometry b =
      Geometry::MakePolygon({{{5, 5}, {15, 5}, {15, 15}, {5, 15}}});
  const Geometry c =
      Geometry::MakePolygon({{{20, 20}, {30, 20}, {25, 30}}});
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
  // Containment without boundary contact.
  const Geometry inner =
      Geometry::MakePolygon({{{2, 2}, {3, 2}, {3, 3}, {2, 3}}});
  EXPECT_TRUE(Intersects(a, inner));
  EXPECT_TRUE(Intersects(inner, a));
  // A polygon inside the hole of the swiss cheese does not intersect it.
  const Geometry in_hole =
      Geometry::MakePolygon({{{4.5, 4.5}, {5.5, 4.5}, {5.5, 5.5}, {4.5, 5.5}}});
  EXPECT_FALSE(Intersects(in_hole, SwissCheese()));
  EXPECT_FALSE(Intersects(SwissCheese(), in_hole));
}

TEST(ContainsTest, BasicContainment) {
  const Geometry outer = UnitSquare();
  EXPECT_TRUE(Contains(outer, Geometry::MakePoint({5, 5})));
  EXPECT_FALSE(Contains(outer, Geometry::MakePoint({15, 5})));
  EXPECT_TRUE(
      Contains(outer, Geometry::MakePolyline({{1, 1}, {9, 9}})));
  EXPECT_FALSE(
      Contains(outer, Geometry::MakePolyline({{5, 5}, {15, 5}})));
  const Geometry inner =
      Geometry::MakePolygon({{{2, 2}, {8, 2}, {8, 8}, {2, 8}}});
  EXPECT_TRUE(Contains(outer, inner));
  EXPECT_FALSE(Contains(inner, outer));
}

TEST(ContainsTest, NonPolygonOuterIsRejected) {
  const Geometry line = Geometry::MakePolyline({{0, 0}, {10, 10}});
  EXPECT_FALSE(Contains(line, Geometry::MakePoint({5, 5})));
}

TEST(ContainsTest, HolePokingIntoInnerBreaksContainment) {
  const Geometry cheese = SwissCheese();
  // Inner polygon surrounds the hole: the hole carves it, so not contained.
  const Geometry around_hole =
      Geometry::MakePolygon({{{3, 3}, {7, 3}, {7, 7}, {3, 7}}});
  EXPECT_FALSE(Contains(cheese, around_hole));
  // Inner polygon clear of the hole is contained.
  const Geometry clear =
      Geometry::MakePolygon({{{1, 1}, {3, 1}, {3, 3}, {1, 3}}});
  EXPECT_TRUE(Contains(cheese, clear));
  // A point inside the hole is not contained.
  EXPECT_FALSE(Contains(cheese, Geometry::MakePoint({5, 5})));
}

TEST(ContainsTest, NaiveAndSweepModesAgree) {
  const Geometry outer = SwissCheese();
  const std::vector<Geometry> inners = {
      Geometry::MakePolygon({{{1, 1}, {3, 1}, {3, 3}, {1, 3}}}),
      Geometry::MakePolygon({{{3, 3}, {7, 3}, {7, 7}, {3, 7}}}),
      Geometry::MakePolyline({{1, 1}, {9, 1}}),
      Geometry::MakePolyline({{1, 1}, {11, 1}}),
  };
  for (const Geometry& g : inners) {
    EXPECT_EQ(Contains(outer, g, SegmentTestMode::kNaive),
              Contains(outer, g, SegmentTestMode::kPlaneSweep));
  }
}

/// Property: the two segment-set algorithms agree on random inputs.
class SegmentSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SegmentSetPropertyTest, NaiveMatchesSweep) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    auto make_set = [&](size_t n) {
      std::vector<Segment> segs;
      for (size_t i = 0; i < n; ++i) {
        const Point a{rng.UniformDouble(0, 20), rng.UniformDouble(0, 20)};
        const Point b{a.x + rng.UniformDouble(-3, 3),
                      a.y + rng.UniformDouble(-3, 3)};
        segs.push_back({a, b});
      }
      return segs;
    };
    const auto red = make_set(1 + rng.Uniform(20));
    const auto blue = make_set(1 + rng.Uniform(20));
    EXPECT_EQ(SegmentSetsIntersect(red, blue, SegmentTestMode::kNaive),
              SegmentSetsIntersect(red, blue, SegmentTestMode::kPlaneSweep));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentSetPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace pbsm
