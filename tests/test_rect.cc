#include "geom/rect.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pbsm {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.width(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
}

TEST(RectTest, BasicMetrics) {
  const Rect r(0, 0, 4, 3);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.width(), 4.0);
  EXPECT_EQ(r.height(), 3.0);
  EXPECT_EQ(r.Area(), 12.0);
  EXPECT_EQ(r.Margin(), 7.0);
  EXPECT_EQ(r.Center(), (Point{2.0, 1.5}));
}

TEST(RectTest, IntersectsIsClosed) {
  const Rect a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Rect(1, 1, 2, 2)));  // Corner touch.
  EXPECT_TRUE(a.Intersects(Rect(1, 0, 2, 1)));  // Edge touch.
  EXPECT_FALSE(a.Intersects(Rect(1.0001, 0, 2, 1)));
  EXPECT_TRUE(a.Intersects(a));
  EXPECT_TRUE(a.Intersects(Rect(0.25, 0.25, 0.75, 0.75)));  // Containment.
}

TEST(RectTest, EmptyNeverIntersects) {
  const Rect a(0, 0, 1, 1);
  const Rect empty;
  EXPECT_FALSE(a.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(a));
  EXPECT_FALSE(empty.Intersects(empty));
  EXPECT_FALSE(a.Contains(empty));
}

TEST(RectTest, ContainsRectAndPoint) {
  const Rect a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Rect(0, 0, 10, 10)));  // Itself (closed).
  EXPECT_TRUE(a.Contains(Rect(2, 2, 8, 8)));
  EXPECT_FALSE(a.Contains(Rect(2, 2, 11, 8)));
  EXPECT_TRUE(a.Contains(Point{0, 0}));
  EXPECT_TRUE(a.Contains(Point{10, 10}));
  EXPECT_FALSE(a.Contains(Point{10.5, 5}));
}

TEST(RectTest, ExpandFromEmpty) {
  Rect r;
  r.Expand(Point{3, 4});
  EXPECT_EQ(r, Rect(3, 4, 3, 4));
  r.Expand(Point{-1, 10});
  EXPECT_EQ(r, Rect(-1, 4, 3, 10));
  Rect q;
  q.Expand(r);
  EXPECT_EQ(q, r);
}

TEST(RectTest, UnionAndIntersection) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 2, 6, 6);
  EXPECT_EQ(Rect::Union(a, b), Rect(0, 0, 6, 6));
  EXPECT_EQ(Rect::Intersection(a, b), Rect(2, 2, 4, 4));
  EXPECT_EQ(Rect::OverlapArea(a, b), 4.0);
  EXPECT_TRUE(Rect::Intersection(a, Rect(5, 5, 6, 6)).empty());
  EXPECT_EQ(Rect::OverlapArea(a, Rect(5, 5, 6, 6)), 0.0);
}

TEST(RectTest, UnionWithEmptyIsIdentity) {
  const Rect a(1, 2, 3, 4);
  EXPECT_EQ(Rect::Union(a, Rect()), a);
  EXPECT_EQ(Rect::Union(Rect(), a), a);
}

class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, IntersectionConsistentWithIntersects) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    auto rand_rect = [&]() {
      const double x = rng.UniformDouble(-10, 10);
      const double y = rng.UniformDouble(-10, 10);
      return Rect(x, y, x + rng.NextDouble() * 5, y + rng.NextDouble() * 5);
    };
    const Rect a = rand_rect();
    const Rect b = rand_rect();
    EXPECT_EQ(a.Intersects(b), !Rect::Intersection(a, b).empty());
    EXPECT_EQ(a.Intersects(b), b.Intersects(a));
    // Union contains both.
    const Rect u = Rect::Union(a, b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    // Containment implies intersection.
    if (a.Contains(b)) EXPECT_TRUE(a.Intersects(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1996));

}  // namespace
}  // namespace pbsm
