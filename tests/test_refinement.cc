#include "core/refinement.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// Fixture with two tiny relations and helpers to run refinement directly.
class RefinementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(256 * kPageSize);
    // R: three horizontal polylines. S: three vertical ones. r_i crosses
    // s_j for all i, j by construction (a grid).
    std::vector<Tuple> r_tuples, s_tuples;
    for (int i = 0; i < 3; ++i) {
      Tuple t;
      t.id = i;
      t.name = "r";
      t.geometry = Geometry::MakePolyline(
          {{0.0, 1.0 + i}, {10.0, 1.0 + i}});
      r_tuples.push_back(t);
      Tuple u;
      u.id = i;
      u.name = "s";
      u.geometry = Geometry::MakePolyline(
          {{1.0 + i, 0.0}, {1.0 + i, 10.0}});
      s_tuples.push_back(u);
    }
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation r, LoadRelation(env_->pool(), nullptr, "r", r_tuples));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation s, LoadRelation(env_->pool(), nullptr, "s", s_tuples));
    r_ = std::make_unique<StoredRelation>(std::move(r));
    s_ = std::make_unique<StoredRelation>(std::move(s));
  }

  /// All 9 (r, s) OID pairs.
  std::vector<OidPair> AllPairs() {
    std::vector<uint64_t> r_oids, s_oids;
    EXPECT_TRUE(r_->heap
                    .Scan([&](Oid oid, const char*, size_t) -> Status {
                      r_oids.push_back(oid.Encode());
                      return Status::OK();
                    })
                    .ok());
    EXPECT_TRUE(s_->heap
                    .Scan([&](Oid oid, const char*, size_t) -> Status {
                      s_oids.push_back(oid.Encode());
                      return Status::OK();
                    })
                    .ok());
    std::vector<OidPair> pairs;
    for (uint64_t r : r_oids) {
      for (uint64_t s : s_oids) pairs.push_back(OidPair{r, s});
    }
    return pairs;
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> r_, s_;
};

TEST_F(RefinementTest, AllCandidatesSurviveWhenAllIntersect) {
  CandidateSorter sorter(env_->pool(), 1 << 20, OidPairLess{});
  for (const OidPair& p : AllPairs()) PBSM_ASSERT_OK(sorter.Add(p));
  JoinOptions opts;
  JoinCostBreakdown breakdown;
  PairSet results;
  PBSM_ASSERT_OK(RefineCandidates(
      &sorter, r_->AsInput(), s_->AsInput(), SpatialPredicate::kIntersects, opts,
      [&](Oid r, Oid s) { results.emplace(r.Encode(), s.Encode()); },
      &breakdown));
  EXPECT_EQ(breakdown.results, 9u);
  EXPECT_EQ(results.size(), 9u);
  EXPECT_EQ(breakdown.duplicates_removed, 0u);
}

TEST_F(RefinementTest, DuplicatesAreRemovedAndCounted) {
  CandidateSorter sorter(env_->pool(), 1 << 20, OidPairLess{});
  const auto pairs = AllPairs();
  // Each pair three times, interleaved.
  for (int rep = 0; rep < 3; ++rep) {
    for (const OidPair& p : pairs) PBSM_ASSERT_OK(sorter.Add(p));
  }
  JoinOptions opts;
  JoinCostBreakdown breakdown;
  PBSM_ASSERT_OK(RefineCandidates(&sorter, r_->AsInput(), s_->AsInput(),
                                  SpatialPredicate::kIntersects, opts, {},
                                  &breakdown));
  EXPECT_EQ(breakdown.results, 9u);
  EXPECT_EQ(breakdown.duplicates_removed, 18u);
}

TEST_F(RefinementTest, TinyBudgetSplitsBlocksWithoutLosingPairs) {
  // A budget so small that every R tuple forms its own block; push-back at
  // block boundaries must not drop or duplicate results.
  for (const size_t budget : {size_t{1}, size_t{64}, size_t{200},
                              size_t{1000}}) {
    CandidateSorter sorter(env_->pool(), 1 << 20, OidPairLess{});
    for (int rep = 0; rep < 2; ++rep) {
      for (const OidPair& p : AllPairs()) PBSM_ASSERT_OK(sorter.Add(p));
    }
    JoinOptions opts;
    opts.memory_budget_bytes = budget;
    JoinCostBreakdown breakdown;
    PairSet results;
    PBSM_ASSERT_OK(RefineCandidates(
        &sorter, r_->AsInput(), s_->AsInput(), SpatialPredicate::kIntersects, opts,
        [&](Oid r, Oid s) { results.emplace(r.Encode(), s.Encode()); },
        &breakdown));
    EXPECT_EQ(results.size(), 9u) << "budget=" << budget;
    EXPECT_EQ(breakdown.results, 9u) << "budget=" << budget;
    EXPECT_EQ(breakdown.duplicates_removed, 9u) << "budget=" << budget;
  }
}

TEST_F(RefinementTest, NonIntersectingCandidatesAreFiltered) {
  // Hand in candidates that do NOT intersect (false positives from MBRs).
  std::vector<Tuple> far_tuples;
  Tuple t;
  t.id = 99;
  t.name = "far";
  t.geometry = Geometry::MakePolyline({{100, 100}, {110, 110}});
  far_tuples.push_back(t);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation far,
      LoadRelation(env_->pool(), nullptr, "far", far_tuples));
  uint64_t far_oid = 0;
  PBSM_ASSERT_OK(far.heap.Scan([&](Oid oid, const char*, size_t) -> Status {
    far_oid = oid.Encode();
    return Status::OK();
  }));

  CandidateSorter sorter(env_->pool(), 1 << 20, OidPairLess{});
  uint64_t r0 = 0;
  PBSM_ASSERT_OK(r_->heap.Scan([&](Oid oid, const char*, size_t) -> Status {
    r0 = oid.Encode();
    return Status::OK();
  }));
  PBSM_ASSERT_OK(sorter.Add(OidPair{r0, far_oid}));
  JoinOptions opts;
  JoinCostBreakdown breakdown;
  PBSM_ASSERT_OK(RefineCandidates(&sorter, r_->AsInput(), far.AsInput(),
                                  SpatialPredicate::kIntersects, opts, {},
                                  &breakdown));
  EXPECT_EQ(breakdown.results, 0u);
}

TEST_F(RefinementTest, EmptyCandidateStream) {
  CandidateSorter sorter(env_->pool(), 1 << 20, OidPairLess{});
  JoinOptions opts;
  JoinCostBreakdown breakdown;
  PBSM_ASSERT_OK(RefineCandidates(&sorter, r_->AsInput(), s_->AsInput(),
                                  SpatialPredicate::kIntersects, opts, {},
                                  &breakdown));
  EXPECT_EQ(breakdown.results, 0u);
  EXPECT_EQ(breakdown.duplicates_removed, 0u);
}

}  // namespace
}  // namespace pbsm
