// Property-fuzz of the adaptive refinement cell machinery against exact
// geometry oracles. RasterizeGeometry's conservatism contract is what makes
// RefineMode::kAdaptive result-identical to kExact, so each property here is
// one clause of that contract, checked on seeded random geometry:
//
//  * occupancy over-inclusion — every point of the geometry lands in a
//    cover cell;
//  * interior under-inclusion — an interior-flagged cell is certified fully
//    inside the polygon (PointInPolygon agrees at corners, center, and
//    random samples);
//  * bucket completeness — every boundary point's cell buckets the segment
//    passing through it, so any intersecting segment pair shares a bucketed
//    cell and witness tests cannot miss;
//  * classification soundness — the engine's kHit/kMiss verdicts never
//    contradict the exact predicate;
//  * curve hierarchy — a coarse Hilbert/Z cell is one contiguous key
//    interval at the finest order (what lets coarse per-object cells become
//    CellRuns).

#include "core/refinement_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/join_options.h"
#include "geom/predicates.h"

namespace pbsm {
namespace {

constexpr uint64_t kFuzzSeed = 20260808;

/// Star-shaped polygon fitted inside `region`: radii at sorted angles never
/// self-intersect, so every sample is valid without a repair pass. Staying
/// inside the region matters — the cell grid's universe is by contract the
/// union of the input MBRs, so the rasterizer never sees out-of-universe
/// coordinates in production.
Geometry RandomPolygon(Rng* rng, const Rect& region, bool with_hole) {
  const double max_r = rng->UniformDouble(0.02, 0.25) *
                       std::min(region.width(), region.height());
  const double cx = rng->UniformDouble(region.xlo + max_r, region.xhi - max_r);
  const double cy = rng->UniformDouble(region.ylo + max_r, region.yhi - max_r);
  const int n = 3 + static_cast<int>(rng->Uniform(10));
  std::vector<Point> outer;
  for (int i = 0; i < n; ++i) {
    const double angle = (i + rng->NextDouble() * 0.8) * 2.0 * M_PI / n;
    const double r = max_r * rng->UniformDouble(0.35, 1.0);
    outer.push_back({cx + r * std::cos(angle), cy + r * std::sin(angle)});
  }
  std::vector<std::vector<Point>> rings = {outer};
  if (with_hole) {
    std::vector<Point> hole;
    // Shrink the outer ring toward the center: stays strictly inside.
    for (const Point& p : outer) {
      hole.push_back({cx + (p.x - cx) * 0.4, cy + (p.y - cy) * 0.4});
    }
    std::reverse(hole.begin(), hole.end());
    rings.push_back(hole);
  }
  return Geometry::MakePolygon(std::move(rings));
}

Geometry RandomPolyline(Rng* rng, const Rect& region) {
  const int n = 2 + static_cast<int>(rng->Uniform(12));
  double x = rng->UniformDouble(region.xlo, region.xhi);
  double y = rng->UniformDouble(region.ylo, region.yhi);
  const double step = 0.1 * std::min(region.width(), region.height());
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({x, y});
    // Clamped random walk; re-draw steps that a corner clamp collapsed to
    // the previous vertex (zero-length segments are uninteresting fuzz).
    do {
      x = std::clamp(pts.back().x + rng->UniformDouble(-step, step),
                     region.xlo, region.xhi);
      y = std::clamp(pts.back().y + rng->UniformDouble(-step, step),
                     region.ylo, region.yhi);
    } while (x == pts.back().x && y == pts.back().y);
  }
  return Geometry::MakePolyline(std::move(pts));
}

Geometry RandomGeometry(Rng* rng, const Rect& region) {
  switch (rng->Uniform(4)) {
    case 0:
      return RandomPolygon(rng, region, rng->Bernoulli(0.3));
    case 1:
      return Geometry::MakePoint({rng->UniformDouble(region.xlo, region.xhi),
                                  rng->UniformDouble(region.ylo, region.yhi)});
    default:
      return RandomPolyline(rng, region);
  }
}

/// Boundary segments of `g` in the cover's ring-major id order (the order
/// ring_seg_off / bucket_seg index into).
std::vector<Segment> BoundarySegments(const Geometry& g) {
  std::vector<Segment> segs;
  g.CollectSegments(&segs);
  return segs;
}

/// True when finest-order cell (fx, fy) is set in the cover (optionally in
/// the certified-interior subset).
bool CoverHasCell(const CellCover& c, uint32_t fx, uint32_t fy,
                  bool interior_only = false) {
  const uint32_t x = fx >> c.shift;
  const uint32_t y = fy >> c.shift;
  if (x < c.bx0 || y < c.by0 || x >= c.bx0 + c.bnx || y >= c.by0 + c.bny) {
    return false;
  }
  const std::vector<uint64_t>& words = interior_only ? c.interior_bits : c.bits;
  if (words.empty()) return false;
  const size_t bit = size_t{x - c.bx0} * c.bny + (y - c.by0);
  return (words[bit >> 6] >> (bit & 63)) & 1;
}

/// Bucketed segment ids of the cover cell containing finest cell (fx, fy).
std::pair<const uint16_t*, const uint16_t*> CellBucket(const CellCover& c,
                                                       uint32_t fx,
                                                       uint32_t fy) {
  const uint32_t x = fx >> c.shift;
  const uint32_t y = fy >> c.shift;
  const size_t bit = size_t{x - c.bx0} * c.bny + (y - c.by0);
  const uint16_t* base = c.bucket_seg.data();
  return {base + c.bucket_off[bit], base + c.bucket_off[bit + 1]};
}

class RefinementFuzzTest : public ::testing::Test {
 protected:
  const Rect universe_{0.0, 0.0, 64.0, 64.0};
};

TEST_F(RefinementFuzzTest, OccupancyBitsAreOverInclusive) {
  // Every point of the geometry — vertices and points sampled along each
  // boundary segment — must land in a set cover cell, at every grid order
  // and cell budget the sweep draws.
  Rng rng(kFuzzSeed);
  for (int iter = 0; iter < 120; ++iter) {
    const uint32_t order = 4 + static_cast<uint32_t>(rng.Uniform(6));
    const uint32_t max_cells = 16u << rng.Uniform(5);
    const CellGrid grid(universe_, order, SpaceFillingCurve::Kind::kHilbert);
    const Geometry g = RandomGeometry(&rng, universe_);
    CellCover cover;
    RasterizeGeometry(g, grid, max_cells, &cover);
    ASSERT_TRUE(cover.built);

    std::vector<Point> samples;
    for (const auto& ring : g.rings()) {
      for (const Point& p : ring) samples.push_back(p);
    }
    for (const Segment& s : BoundarySegments(g)) {
      for (int k = 0; k < 8; ++k) {
        const double t = rng.NextDouble();
        samples.push_back({s.a.x + t * (s.b.x - s.a.x),
                           s.a.y + t * (s.b.y - s.a.y)});
      }
    }
    for (const Point& p : samples) {
      EXPECT_TRUE(CoverHasCell(cover, grid.CellX(p.x), grid.CellY(p.y)))
          << "iter " << iter << ": boundary point (" << p.x << ", " << p.y
          << ") in no cover cell";
    }
  }
}

TEST_F(RefinementFuzzTest, InteriorBitsAreUnderInclusive) {
  // A cell flagged interior claims "certainly inside the polygon": the
  // exact point-in-polygon oracle must agree everywhere in the cell, holes
  // included. Interior cells must also be a subset of the occupancy bits.
  Rng rng(kFuzzSeed + 1);
  uint64_t interior_cells = 0;
  for (int iter = 0; iter < 80; ++iter) {
    const uint32_t order = 5 + static_cast<uint32_t>(rng.Uniform(5));
    const CellGrid grid(universe_, order, SpaceFillingCurve::Kind::kHilbert);
    const Geometry g = RandomPolygon(&rng, universe_, rng.Bernoulli(0.5));
    CellCover cover;
    RasterizeGeometry(g, grid, /*max_cells=*/256, &cover);
    if (!cover.has_interior) continue;

    const uint32_t precision = grid.order() - cover.shift;
    for (uint32_t x = cover.bx0; x < cover.bx0 + cover.bnx; ++x) {
      for (uint32_t y = cover.by0; y < cover.by0 + cover.bny; ++y) {
        const uint32_t fx = x << cover.shift;
        const uint32_t fy = y << cover.shift;
        if (!CoverHasCell(cover, fx, fy, /*interior_only=*/true)) continue;
        EXPECT_TRUE(CoverHasCell(cover, fx, fy))
            << "interior cell missing from occupancy bits";
        ++interior_cells;
        const Rect cell = grid.CellRect(x, y, precision);
        std::vector<Point> probes = {
            {cell.xlo, cell.ylo}, {cell.xhi, cell.ylo}, {cell.xlo, cell.yhi},
            {cell.xhi, cell.yhi}, cell.Center()};
        for (int k = 0; k < 4; ++k) {
          probes.push_back({rng.UniformDouble(cell.xlo, cell.xhi),
                            rng.UniformDouble(cell.ylo, cell.yhi)});
        }
        for (const Point& p : probes) {
          EXPECT_TRUE(PointInPolygon(p, g))
              << "iter " << iter << ": interior cell (" << x << ", " << y
              << ") holds exterior point (" << p.x << ", " << p.y << ")";
        }
      }
    }
  }
  // Vacuousness guard: the sweep must actually certify interiors.
  EXPECT_GT(interior_cells, 100u);
}

TEST_F(RefinementFuzzTest, SegmentBucketsAreComplete) {
  // Witness soundness: for any point p on boundary segment `sid`, the
  // bucket of p's cell must contain `sid`. Hence two intersecting segments
  // always meet inside a cell where both are discoverable — a boundary
  // collision can run a purely local exact test without missing witnesses.
  Rng rng(kFuzzSeed + 2);
  uint64_t bucketed_hits = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const uint32_t order = 4 + static_cast<uint32_t>(rng.Uniform(6));
    const CellGrid grid(universe_, order, SpaceFillingCurve::Kind::kHilbert);
    const Geometry g = rng.Bernoulli(0.5)
                           ? RandomPolygon(&rng, universe_, rng.Bernoulli(0.3))
                           : RandomPolyline(&rng, universe_);
    CellCover cover;
    RasterizeGeometry(g, grid, /*max_cells=*/256, &cover,
                      /*build_runs=*/true, /*build_rects=*/true,
                      /*build_buckets=*/true);
    const std::vector<Segment> segs = BoundarySegments(g);
    ASSERT_FALSE(cover.ring_seg_off.empty());
    // The ring offset table's sentinel is the total segment count and the
    // bucketed ids must stay within it.
    EXPECT_EQ(cover.ring_seg_off.back(), segs.size());
    for (const uint16_t sid : cover.bucket_seg) {
      ASSERT_LT(sid, segs.size());
    }
    for (size_t sid = 0; sid < segs.size(); ++sid) {
      const Segment& s = segs[sid];
      for (int k = 0; k < 6; ++k) {
        const double t = rng.NextDouble();
        const Point p{s.a.x + t * (s.b.x - s.a.x),
                      s.a.y + t * (s.b.y - s.a.y)};
        const uint32_t fx = grid.CellX(p.x);
        const uint32_t fy = grid.CellY(p.y);
        ASSERT_TRUE(CoverHasCell(cover, fx, fy));
        const auto [lo, hi] = CellBucket(cover, fx, fy);
        EXPECT_NE(std::find(lo, hi, static_cast<uint16_t>(sid)), hi)
            << "iter " << iter << ": segment " << sid
            << " missing from bucket of its own cell";
        ++bucketed_hits;
      }
    }
  }
  EXPECT_GT(bucketed_hits, 1000u);
}

TEST_F(RefinementFuzzTest, ClassificationNeverContradictsExactOracle) {
  // The engine may defer (kNeedExact), but a certain verdict must match the
  // exact predicate: kHit only on true pairs, kMiss only on false ones.
  // Approximate mode may additionally accept uncertain pairs (kAccepted) —
  // by contract a superset — but its certain verdicts obey the same rule.
  Rng rng(kFuzzSeed + 3);
  uint64_t hits = 0, misses = 0, deferred = 0, accepted = 0;
  for (const SpatialPredicate pred :
       {SpatialPredicate::kIntersects, SpatialPredicate::kContains}) {
    for (const RefineMode mode :
         {RefineMode::kAdaptive, RefineMode::kApproximate}) {
      RefineOptions opts;
      opts.mode = mode;
      opts.grid_order = 7;
      std::unique_ptr<RefinementEngine> engine =
          RefinementEngine::Create(pred, opts, universe_, 2.0, 2.0);
      ASSERT_NE(engine->grid(), nullptr);
      for (int iter = 0; iter < 250; ++iter) {
        // Bias most pairs into one small shared window — independent draws
        // over the full universe are nearly always trivially disjoint, and
        // the certain-verdict assertions would go vacuous. For containment,
        // S is additionally drawn from the middle of R's MBR so true
        // containments actually occur.
        Rect region = universe_;
        if (rng.Bernoulli(0.8)) {
          const double w = rng.UniformDouble(4.0, 12.0);
          const double x = rng.UniformDouble(universe_.xlo, universe_.xhi - w);
          const double y = rng.UniformDouble(universe_.ylo, universe_.yhi - w);
          region = Rect(x, y, x + w, y + w);
        }
        // kContains needs a polygon on the R (outer) side to be satisfiable.
        const Geometry r = pred == SpatialPredicate::kContains
                               ? RandomPolygon(&rng, region, false)
                               : RandomGeometry(&rng, region);
        Rect s_region = region;
        if (pred == SpatialPredicate::kContains && rng.Bernoulli(0.6)) {
          const Rect& m = r.Mbr();
          const double sw = m.width() / 4.0, sh = m.height() / 4.0;
          s_region = Rect(m.xlo + sw, m.ylo + sh, m.xhi - sw, m.yhi - sh);
        }
        const Geometry s = RandomGeometry(&rng, s_region);
        CellCover s_cover;
        engine->BuildCover(s, &s_cover);
        CellCover r_cover;
        const CellDecision d = engine->Classify(r, &r_cover, s, s_cover);
        const bool oracle =
            EvaluatePredicate(pred, r, s, SegmentTestMode::kPlaneSweep);
        switch (d) {
          case CellDecision::kHit:
            EXPECT_TRUE(oracle) << "false positive kHit";
            ++hits;
            break;
          case CellDecision::kMiss:
            EXPECT_FALSE(oracle) << "false negative kMiss";
            ++misses;
            break;
          case CellDecision::kNeedExact:
            // Legitimate in both modes: approximate still defers e.g. a
            // non-polygon R under contains rather than guess.
            ++deferred;
            break;
          case CellDecision::kAccepted:
            EXPECT_EQ(mode, RefineMode::kApproximate);
            ++accepted;
            break;
        }
      }
    }
  }
  // The sweep must exercise every decision class, or the assertions above
  // prove nothing.
  EXPECT_GT(hits, 50u);
  EXPECT_GT(misses, 50u);
  EXPECT_GT(deferred, 20u);
  EXPECT_GT(accepted, 20u);
}

TEST_F(RefinementFuzzTest, CurveHierarchyIsPrefixContiguous) {
  // CellRun's coarse-cell encoding assumes both curves are hierarchical: a
  // cell at order k covers exactly the finest-order keys
  // [key_k * 4^(n-k), (key_k + 1) * 4^(n-k)). Verified exhaustively per
  // sampled coarse cell for both curves.
  Rng rng(kFuzzSeed + 4);
  for (int iter = 0; iter < 200; ++iter) {
    const uint32_t n = 4 + static_cast<uint32_t>(rng.Uniform(7));  // 4..10.
    const uint32_t k = 1 + static_cast<uint32_t>(rng.Uniform(n - 1));
    const uint32_t shift = n - k;
    const uint32_t cx = static_cast<uint32_t>(rng.Uniform(1u << k));
    const uint32_t cy = static_cast<uint32_t>(rng.Uniform(1u << k));
    for (const bool hilbert : {true, false}) {
      const uint64_t coarse = hilbert ? HilbertD2XY(k, cx, cy)
                                      : ZOrderKey(k, cx, cy);
      const uint64_t lo = coarse << (2 * shift);
      const uint64_t hi = (coarse + 1) << (2 * shift);
      for (uint32_t dx = 0; dx < (1u << shift); ++dx) {
        for (uint32_t dy = 0; dy < (1u << shift); ++dy) {
          const uint32_t x = (cx << shift) | dx;
          const uint32_t y = (cy << shift) | dy;
          const uint64_t key =
              hilbert ? HilbertD2XY(n, x, y) : ZOrderKey(n, x, y);
          ASSERT_GE(key, lo) << (hilbert ? "hilbert" : "zorder");
          ASSERT_LT(key, hi) << (hilbert ? "hilbert" : "zorder");
        }
      }
    }
  }
}

}  // namespace
}  // namespace pbsm
