#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/stopwatch.h"

namespace pbsm {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRanges) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t u = rng.Uniform(7);
    EXPECT_LT(u, 7u);
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double x = rng.UniformDouble(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, UniformCoversAllBuckets) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.Uniform(10)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(StatsTest, EmptySample) {
  const SampleStats s = ComputeStats(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.CoefficientOfVariation(), 0.0);
}

TEST(StatsTest, KnownSample) {
  const SampleStats s = ComputeStats(std::vector<double>{2, 4, 4, 4, 5, 5,
                                                         7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // Classic textbook sample.
  EXPECT_DOUBLE_EQ(s.CoefficientOfVariation(), 0.4);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(StatsTest, UniformDistributionHasZeroCov) {
  const SampleStats s =
      ComputeStats(std::vector<uint64_t>{100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(s.CoefficientOfVariation(), 0.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += std::sqrt(i);
  const double t = watch.ElapsedSeconds();
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 30.0);
  EXPECT_GE(watch.ElapsedMicros(), 0);
}

TEST(TimeAccumulatorTest, AccumulatesScopes) {
  TimeAccumulator acc;
  {
    TimeAccumulator::Scope scope(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  const double once = acc.seconds();
  EXPECT_GT(once, 0.0);
  {
    TimeAccumulator::Scope scope(&acc);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(acc.seconds(), once);
  acc.Reset();
  EXPECT_EQ(acc.seconds(), 0.0);
}

}  // namespace
}  // namespace pbsm
