#include "rtree/rstar_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

std::vector<RTreeEntry> RandomEntries(Rng* rng, size_t n, double extent,
                                      double max_size) {
  std::vector<RTreeEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->UniformDouble(0, extent);
    const double y = rng->UniformDouble(0, extent);
    out.push_back(RTreeEntry{Rect(x, y, x + rng->NextDouble() * max_size,
                                  y + rng->NextDouble() * max_size),
                             i});
  }
  return out;
}

std::set<uint64_t> BruteForceQuery(const std::vector<RTreeEntry>& entries,
                                   const Rect& window) {
  std::set<uint64_t> out;
  for (const RTreeEntry& e : entries) {
    if (e.mbr.Intersects(window)) out.insert(e.handle);
  }
  return out;
}

std::set<uint64_t> TreeQuery(const RStarTree& tree, const Rect& window) {
  std::vector<uint64_t> hits;
  EXPECT_TRUE(tree.WindowQuery(window, &hits).ok());
  return std::set<uint64_t>(hits.begin(), hits.end());
}

/// Walks the tree checking structural invariants:
///  * child entry MBRs are contained in the parent entry's MBR,
///  * levels decrease by one per step,
///  * non-root nodes hold >= kMinEntries entries (insert-built trees).
void CheckInvariants(const RStarTree& tree, uint32_t page_no,
                     uint16_t expected_level, const Rect* parent_mbr,
                     bool check_min_fill, uint64_t* leaf_entries) {
  uint16_t level;
  std::vector<RTreeEntry> entries;
  PBSM_ASSERT_OK(tree.ReadNode(page_no, &level, &entries));
  EXPECT_EQ(level, expected_level);
  if (parent_mbr != nullptr) {
    for (const RTreeEntry& e : entries) {
      EXPECT_TRUE(parent_mbr->Contains(e.mbr))
          << "child MBR escapes parent at level " << level;
    }
    if (check_min_fill) {
      EXPECT_GE(entries.size(), RStarTree::kMinEntries);
    }
  }
  EXPECT_LE(entries.size(), RStarTree::kMaxEntries);
  if (level == 0) {
    *leaf_entries += entries.size();
    return;
  }
  for (const RTreeEntry& e : entries) {
    CheckInvariants(tree, static_cast<uint32_t>(e.handle), level - 1, &e.mbr,
                    check_min_fill, leaf_entries);
  }
}

TEST(RStarTreeTest, EmptyTreeQueries) {
  StorageEnv env(128 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  EXPECT_EQ(tree.height(), 1u);
  std::vector<uint64_t> hits;
  PBSM_ASSERT_OK(tree.WindowQuery(Rect(0, 0, 100, 100), &hits));
  EXPECT_TRUE(hits.empty());
}

TEST(RStarTreeTest, InsertAndQuerySmall) {
  StorageEnv env(128 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  PBSM_ASSERT_OK(tree.Insert(Rect(0, 0, 1, 1), 1));
  PBSM_ASSERT_OK(tree.Insert(Rect(5, 5, 6, 6), 2));
  PBSM_ASSERT_OK(tree.Insert(Rect(0.5, 0.5, 5.5, 5.5), 3));
  EXPECT_EQ(tree.num_entries(), 3u);
  EXPECT_EQ(TreeQuery(tree, Rect(0, 0, 2, 2)),
            (std::set<uint64_t>{1, 3}));
  EXPECT_EQ(TreeQuery(tree, Rect(10, 10, 20, 20)), (std::set<uint64_t>{}));
  // Touching window (closed semantics).
  EXPECT_EQ(TreeQuery(tree, Rect(6, 6, 7, 7)), (std::set<uint64_t>{2}));
}

class RTreeBuildTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeBuildTest, InsertBuiltTreeMatchesBruteForce) {
  const size_t n = GetParam();
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  Rng rng(n);
  const auto entries = RandomEntries(&rng, n, 100.0, 3.0);
  for (const RTreeEntry& e : entries) {
    PBSM_ASSERT_OK(tree.Insert(e.mbr, e.handle));
  }
  EXPECT_EQ(tree.num_entries(), n);

  // Structural invariants (insert-built trees respect min fill).
  uint64_t leaf_entries = 0;
  CheckInvariants(tree, tree.root_page(), tree.height() - 1, nullptr,
                  /*check_min_fill=*/true, &leaf_entries);
  EXPECT_EQ(leaf_entries, n);

  for (int q = 0; q < 50; ++q) {
    const double x = rng.UniformDouble(0, 100);
    const double y = rng.UniformDouble(0, 100);
    const Rect window(x, y, x + rng.NextDouble() * 20,
                      y + rng.NextDouble() * 20);
    EXPECT_EQ(TreeQuery(tree, window), BruteForceQuery(entries, window));
  }
}

TEST_P(RTreeBuildTest, BulkLoadedTreeMatchesBruteForce) {
  const size_t n = GetParam();
  StorageEnv env(512 * kPageSize);
  Rng rng(n + 7);
  const auto entries = RandomEntries(&rng, n, 100.0, 3.0);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree tree,
      RStarTree::BulkLoad(env.pool(), "t.rtree", entries, 0.75));
  EXPECT_EQ(tree.num_entries(), n);

  uint64_t leaf_entries = 0;
  CheckInvariants(tree, tree.root_page(), tree.height() - 1, nullptr,
                  /*check_min_fill=*/false, &leaf_entries);
  EXPECT_EQ(leaf_entries, n);

  for (int q = 0; q < 50; ++q) {
    const double x = rng.UniformDouble(0, 100);
    const double y = rng.UniformDouble(0, 100);
    const Rect window(x, y, x + rng.NextDouble() * 20,
                      y + rng.NextDouble() * 20);
    EXPECT_EQ(TreeQuery(tree, window), BruteForceQuery(entries, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeBuildTest,
                         ::testing::Values(10, 200, 1000, 5000));

TEST(RStarTreeTest, BulkLoadEmptyInput) {
  StorageEnv env(64 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree tree, RStarTree::BulkLoad(env.pool(), "t.rtree", {}, 0.75));
  EXPECT_EQ(tree.height(), 1u);
  std::vector<uint64_t> hits;
  PBSM_ASSERT_OK(tree.WindowQuery(Rect(0, 0, 1, 1), &hits));
  EXPECT_TRUE(hits.empty());
}

TEST(RStarTreeTest, BulkLoadGrowsMultipleLevels) {
  StorageEnv env(1024 * kPageSize);
  Rng rng(5);
  const auto entries = RandomEntries(&rng, 3000, 100.0, 1.0);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree tree,
      RStarTree::BulkLoad(env.pool(), "t.rtree", entries, 0.75));
  EXPECT_GE(tree.height(), 2u);
  PBSM_ASSERT_OK_AND_ASSIGN(const RTreeStats stats, tree.ComputeStats());
  EXPECT_EQ(stats.num_entries, 3000u);
  EXPECT_GT(stats.num_nodes, 15u);
  EXPECT_EQ(stats.size_bytes, stats.num_nodes * kPageSize);
  EXPECT_EQ(stats.height, tree.height());
}

TEST(RStarTreeTest, BulkLoadFillFactorControlsNodeCount) {
  StorageEnv env(1024 * kPageSize);
  Rng rng(6);
  const auto entries = RandomEntries(&rng, 4000, 100.0, 1.0);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree dense,
      RStarTree::BulkLoad(env.pool(), "dense.rtree", entries, 1.0));
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree sparse,
      RStarTree::BulkLoad(env.pool(), "sparse.rtree", entries, 0.5));
  PBSM_ASSERT_OK_AND_ASSIGN(const RTreeStats d, dense.ComputeStats());
  PBSM_ASSERT_OK_AND_ASSIGN(const RTreeStats s, sparse.ComputeStats());
  EXPECT_LT(d.num_nodes, s.num_nodes);
}

TEST(RStarTreeTest, DuplicateRectanglesSupported) {
  StorageEnv env(256 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  for (uint64_t i = 0; i < 500; ++i) {
    PBSM_ASSERT_OK(tree.Insert(Rect(1, 1, 2, 2), i));
  }
  EXPECT_EQ(TreeQuery(tree, Rect(1.5, 1.5, 1.6, 1.6)).size(), 500u);
}

TEST(RStarTreeTest, EntrySizeMatchesPaperKeyPointerLayout) {
  // 4 doubles + 8-byte handle = 40 bytes; ~204 entries per 8K page. This is
  // what makes the synthetic Road index ~24 MB at full scale, matching
  // Table 2.
  EXPECT_EQ(RStarTree::kMaxEntries, (kPageSize - 8) / 40);
  EXPECT_GE(RStarTree::kMinEntries, RStarTree::kMaxEntries * 2 / 5);
}

}  // namespace
}  // namespace pbsm
