#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "rtree/rstar_tree.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

std::vector<RTreeEntry> RandomEntries(Rng* rng, size_t n) {
  std::vector<RTreeEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->UniformDouble(0, 100);
    const double y = rng->UniformDouble(0, 100);
    out.push_back(RTreeEntry{
        Rect(x, y, x + rng->NextDouble() * 3, y + rng->NextDouble() * 3), i});
  }
  return out;
}

std::set<uint64_t> TreeQuery(const RStarTree& tree, const Rect& window) {
  std::vector<uint64_t> hits;
  EXPECT_TRUE(tree.WindowQuery(window, &hits).ok());
  return std::set<uint64_t>(hits.begin(), hits.end());
}

TEST(RTreeDeleteTest, DeleteFromSmallTree) {
  StorageEnv env(128 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  PBSM_ASSERT_OK(tree.Insert(Rect(0, 0, 1, 1), 1));
  PBSM_ASSERT_OK(tree.Insert(Rect(5, 5, 6, 6), 2));
  bool found = false;
  PBSM_ASSERT_OK(tree.Delete(Rect(0, 0, 1, 1), 1, &found));
  EXPECT_TRUE(found);
  EXPECT_EQ(tree.num_entries(), 1u);
  EXPECT_EQ(TreeQuery(tree, Rect(0, 0, 10, 10)), (std::set<uint64_t>{2}));
}

TEST(RTreeDeleteTest, DeleteMissingEntryReportsNotFound) {
  StorageEnv env(128 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  PBSM_ASSERT_OK(tree.Insert(Rect(0, 0, 1, 1), 1));
  bool found = true;
  // Right OID, wrong rectangle.
  PBSM_ASSERT_OK(tree.Delete(Rect(0, 0, 2, 2), 1, &found));
  EXPECT_FALSE(found);
  // Right rectangle, wrong OID.
  PBSM_ASSERT_OK(tree.Delete(Rect(0, 0, 1, 1), 9, &found));
  EXPECT_FALSE(found);
  EXPECT_EQ(tree.num_entries(), 1u);
}

TEST(RTreeDeleteTest, DeleteEverythingLeavesEmptyTree) {
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  Rng rng(1);
  const auto entries = RandomEntries(&rng, 800);
  for (const auto& e : entries) {
    PBSM_ASSERT_OK(tree.Insert(e.mbr, e.handle));
  }
  EXPECT_GE(tree.height(), 2u);
  for (const auto& e : entries) {
    bool found = false;
    PBSM_ASSERT_OK(tree.Delete(e.mbr, e.handle, &found));
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_TRUE(TreeQuery(tree, Rect(-1000, -1000, 1000, 1000)).empty());
  // The root collapsed back down.
  EXPECT_EQ(tree.height(), 1u);
}

class RTreeChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeChurnTest, InterleavedInsertDeleteMatchesBruteForce) {
  StorageEnv env(1024 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  Rng rng(GetParam());
  std::vector<RTreeEntry> live;
  uint64_t next_handle = 0;

  for (int step = 0; step < 2500; ++step) {
    const bool insert = live.empty() || rng.Bernoulli(0.6);
    if (insert) {
      const double x = rng.UniformDouble(0, 100);
      const double y = rng.UniformDouble(0, 100);
      const RTreeEntry e{
          Rect(x, y, x + rng.NextDouble() * 2, y + rng.NextDouble() * 2),
          next_handle++};
      PBSM_ASSERT_OK(tree.Insert(e.mbr, e.handle));
      live.push_back(e);
    } else {
      const size_t idx = rng.Uniform(live.size());
      bool found = false;
      PBSM_ASSERT_OK(tree.Delete(live[idx].mbr, live[idx].handle, &found));
      EXPECT_TRUE(found) << "step " << step;
      live.erase(live.begin() + static_cast<long>(idx));
    }
    EXPECT_EQ(tree.num_entries(), live.size());

    if (step % 100 == 99) {
      // Spot-check queries against brute force.
      for (int q = 0; q < 5; ++q) {
        const double x = rng.UniformDouble(0, 90);
        const double y = rng.UniformDouble(0, 90);
        const Rect window(x, y, x + 10, y + 10);
        std::set<uint64_t> expected;
        for (const auto& e : live) {
          if (e.mbr.Intersects(window)) expected.insert(e.handle);
        }
        EXPECT_EQ(TreeQuery(tree, window), expected) << "step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeChurnTest, ::testing::Values(21, 22));

TEST(RTreeDeleteTest, UnderflowReinsertsSurvivors) {
  // Build a multi-node tree, delete a cluster of neighbors to force a leaf
  // underflow; the survivors must remain queryable.
  StorageEnv env(512 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(RStarTree tree,
                            RStarTree::Create(env.pool(), "t.rtree"));
  Rng rng(9);
  const auto entries = RandomEntries(&rng, 600);
  for (const auto& e : entries) {
    PBSM_ASSERT_OK(tree.Insert(e.mbr, e.handle));
  }
  // Delete all entries in the left half of the universe.
  std::set<uint64_t> remaining;
  for (const auto& e : entries) {
    if (e.mbr.Center().x < 50) {
      bool found = false;
      PBSM_ASSERT_OK(tree.Delete(e.mbr, e.handle, &found));
      EXPECT_TRUE(found);
    } else {
      remaining.insert(e.handle);
    }
  }
  EXPECT_EQ(TreeQuery(tree, Rect(-10, -10, 110, 110)), remaining);
}

}  // namespace
}  // namespace pbsm
