// SIMD-ified R-tree node ribbons: quantization conservatism (property
// fuzz over random and degenerate node geometries), exact result
// equivalence of every layout x kernel combination through real trees,
// ribbon invalidation on mutation, and the steady-state zero-allocation
// contract of the ribbon probe path.
//
// This TU replaces the global allocation operators with counting versions
// (toggled by a flag, delegating to malloc/free) so the zero-allocation
// test observes every heap allocation a warm WindowQuery would make. The
// test binary is its own executable (one binary per test source), so the
// replacement affects nothing else.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/sweep_kernel.h"
#include "rtree/node_layout.h"
#include "rtree/node_ribbon.h"
#include "rtree/rstar_tree.h"
#include "tests/test_util.h"

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void NoteAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) {
  NoteAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  NoteAlloc();
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pbsm {
namespace {

std::vector<RTreeEntry> RandomEntries(size_t n, uint64_t seed,
                                      double span = 1000.0,
                                      double max_extent = 5.0) {
  Rng rng(seed);
  std::vector<RTreeEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, span);
    const double y = rng.UniformDouble(0, span);
    out.push_back(RTreeEntry{Rect(x, y, x + rng.NextDouble() * max_extent,
                                  y + rng.NextDouble() * max_extent),
                             i});
  }
  return out;
}

/// Indices of entries exactly intersecting `w` — the reference every
/// layout and kernel must reproduce.
std::set<uint32_t> ExactHits(const std::vector<RTreeEntry>& entries,
                             const Rect& w) {
  std::set<uint32_t> out;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].mbr.Intersects(w)) out.insert(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<KernelKind> KernelsToTest() {
  std::vector<KernelKind> kinds = {KernelKind::kScalar};
  if (Avx2Supported()) kinds.push_back(KernelKind::kAvx2);
  return kinds;
}

/// Checks one ribbon against one window under every runnable kernel:
/// the raw q16 prefilter must be a superset of the exact hit set, and
/// ScanRibbonWindow (prefilter + double re-verify) must equal it.
void CheckRibbonWindow(const NodeRibbon& ribbon,
                       const std::vector<RTreeEntry>& entries,
                       const Rect& w) {
  const std::set<uint32_t> exact = ExactHits(entries, w);
  std::vector<uint32_t> idx(entries.size());
  for (const KernelKind kind : KernelsToTest()) {
    if (ribbon.quantized() && !w.empty()) {
      uint16_t wxlo, wylo, wxhi, wyhi;
      ribbon.QuantizeWindow(w, &wxlo, &wylo, &wxhi, &wyhi);
      uint64_t lanes = 0;
      const size_t cand = sweep_internal::KernelOps(kind).scan_window_q16(
          ribbon.q16(), wxlo, wylo, wxhi, wyhi, idx.data(), &lanes);
      const std::set<uint32_t> prefilter(idx.begin(), idx.begin() + cand);
      for (const uint32_t e : exact) {
        EXPECT_TRUE(prefilter.count(e) > 0)
            << "q16 prefilter dropped exact hit " << e << " under "
            << KernelKindName(kind);
      }
    }
    RibbonScanStats stats;
    const size_t n = ScanRibbonWindow(ribbon, w, kind, idx.data(), &stats);
    const std::set<uint32_t> got(idx.begin(), idx.begin() + n);
    EXPECT_EQ(got, exact) << "ScanRibbonWindow mismatch under "
                          << KernelKindName(kind);
  }
}

TEST(NodeRibbonTest, QuantizationConservatismFuzz) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    // Mix wide and near-degenerate entry extents across rounds.
    const double span = seed % 2 == 0 ? 1000.0 : 1e-3;
    const auto entries = RandomEntries(180, seed, span, span / 100.0);
    NodeRibbon ribbon;
    ribbon.Build(entries.data(), entries.size(), /*level=*/0,
                 /*quantized=*/true);
    Rng rng(seed * 1000);
    for (int q = 0; q < 60; ++q) {
      const double x = rng.UniformDouble(-span / 10, span);
      const double y = rng.UniformDouble(-span / 10, span);
      const double w = rng.NextDouble() * span / 5;
      const double h = rng.NextDouble() * span / 5;
      CheckRibbonWindow(ribbon, entries, Rect(x, y, x + w, y + h));
    }
    // Windows that are exact entry MBRs (touch-only boundaries, the
    // closed-interval worst case for rounding).
    for (int q = 0; q < 20; ++q) {
      CheckRibbonWindow(ribbon, entries,
                        entries[rng.Uniform(entries.size())].mbr);
    }
    // The full node MBR (quantizes to the entire grid) and an empty window.
    CheckRibbonWindow(ribbon, entries, ribbon.mbr());
    CheckRibbonWindow(ribbon, entries, Rect());
  }
}

TEST(NodeRibbonTest, DegenerateNodeMbrsStayConservative) {
  // Zero-width node (all entries on one vertical line), zero-height node,
  // and a pure point node: the flat axes get scale 0, every coordinate
  // collapses to grid cell 0, and the scan must still match exactly after
  // the double re-verify.
  struct Case {
    const char* name;
    std::vector<RTreeEntry> entries;
  };
  std::vector<Case> cases;
  {
    Case c{"zero-width", {}};
    for (uint64_t i = 0; i < 40; ++i) {
      const double y = static_cast<double>(i) * 0.5;
      c.entries.push_back(RTreeEntry{Rect(7.0, y, 7.0, y + 1.0), i});
    }
    cases.push_back(std::move(c));
  }
  {
    Case c{"zero-height", {}};
    for (uint64_t i = 0; i < 40; ++i) {
      const double x = static_cast<double>(i) * 0.5;
      c.entries.push_back(RTreeEntry{Rect(x, -3.0, x + 1.0, -3.0), i});
    }
    cases.push_back(std::move(c));
  }
  {
    Case c{"point", {}};
    for (uint64_t i = 0; i < 40; ++i) {
      c.entries.push_back(RTreeEntry{Rect(2.5, 2.5, 2.5, 2.5), i});
    }
    cases.push_back(std::move(c));
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    NodeRibbon ribbon;
    ribbon.Build(c.entries.data(), c.entries.size(), /*level=*/0,
                 /*quantized=*/true);
    // Probe windows: hitting, missing, touching exactly, and covering all.
    CheckRibbonWindow(ribbon, c.entries, Rect(0.0, 0.0, 10.0, 10.0));
    CheckRibbonWindow(ribbon, c.entries, Rect(100.0, 100.0, 101.0, 101.0));
    CheckRibbonWindow(ribbon, c.entries, c.entries[3].mbr);
    CheckRibbonWindow(ribbon, c.entries, ribbon.mbr());
    for (const RTreeEntry& e : c.entries) {
      CheckRibbonWindow(ribbon, c.entries,
                        Rect(e.mbr.xhi, e.mbr.yhi, e.mbr.xhi + 1.0,
                             e.mbr.yhi + 1.0));  // Corner touch.
    }
  }
}

TEST(NodeRibbonTest, AllLayoutsReturnIdenticalWindowQueryResults) {
  StorageEnv env(2048 * kPageSize);
  const auto entries = RandomEntries(5000, 42);
  const std::vector<NodeLayout> layouts = {
      NodeLayout::kAos, NodeLayout::kSoa, NodeLayout::kSoaQuantized};
  std::vector<RStarTree> trees;
  for (const NodeLayout layout : layouts) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        RStarTree tree,
        RStarTree::BulkLoad(env.pool(),
                            "t_" + std::string(NodeLayoutName(layout)) +
                                ".rtree",
                            entries, 0.75, layout));
    ASSERT_EQ(tree.layout(), layout);
    trees.push_back(std::move(tree));
  }
  ASSERT_EQ(trees[0].ribbon(trees[0].root_page()), nullptr);
  ASSERT_NE(trees[2].ribbon(trees[2].root_page()), nullptr);
  EXPECT_TRUE(trees[2].ribbon(trees[2].root_page())->quantized());

  Rng rng(43);
  const std::vector<SimdMode> modes =
      Avx2Supported() ? std::vector<SimdMode>{SimdMode::kScalar,
                                              SimdMode::kAvx2}
                      : std::vector<SimdMode>{SimdMode::kScalar};
  for (int q = 0; q < 50; ++q) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    const Rect w(x, y, x + rng.NextDouble() * 30, y + rng.NextDouble() * 30);
    std::multiset<uint64_t> reference;
    bool first = true;
    for (const SimdMode mode : modes) {
      for (const RStarTree& tree : trees) {
        std::vector<uint64_t> hits;
        PBSM_ASSERT_OK(tree.WindowQuery(w, &hits, mode));
        std::multiset<uint64_t> got(hits.begin(), hits.end());
        if (first) {
          reference = std::move(got);
          first = false;
        } else {
          EXPECT_EQ(got, reference)
              << "layout " << NodeLayoutName(tree.layout()) << " diverged";
        }
      }
    }
  }
}

TEST(NodeRibbonTest, MutationInvalidatesRibbonsAndFallsBackCorrectly) {
  StorageEnv env(2048 * kPageSize);
  auto entries = RandomEntries(2000, 7);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree tree, RStarTree::BulkLoad(env.pool(), "mut.rtree", entries,
                                          0.75, NodeLayout::kSoaQuantized));
  ASSERT_EQ(tree.layout(), NodeLayout::kSoaQuantized);
  ASSERT_NE(tree.ribbon(tree.root_page()), nullptr);

  // Mutate: the ribbons no longer mirror the pages, so they must be gone.
  const Rect added(500.25, 500.25, 500.75, 500.75);
  PBSM_ASSERT_OK(tree.Insert(added, 999'999));
  EXPECT_EQ(tree.layout(), NodeLayout::kAos);
  EXPECT_EQ(tree.ribbon(tree.root_page()), nullptr);

  // The AoS fallback serves correct results including the new entry.
  std::vector<uint64_t> hits;
  PBSM_ASSERT_OK(tree.WindowQuery(Rect(500, 500, 501, 501), &hits));
  EXPECT_NE(std::find(hits.begin(), hits.end(), 999'999u), hits.end());

  bool found = false;
  PBSM_ASSERT_OK(tree.Delete(added, 999'999, &found));
  EXPECT_TRUE(found);
  EXPECT_EQ(tree.layout(), NodeLayout::kAos);

  // Re-accelerating after mutations restores the ribbon path with the
  // same results.
  PBSM_ASSERT_OK(tree.BuildRibbons(NodeLayout::kSoaQuantized));
  EXPECT_EQ(tree.layout(), NodeLayout::kSoaQuantized);
  std::vector<uint64_t> ribbon_hits;
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    const double x = rng.UniformDouble(0, 1000);
    const Rect w(x, x, x + 20, x + 20);
    ribbon_hits.clear();
    PBSM_ASSERT_OK(tree.WindowQuery(w, &ribbon_hits));
    const auto exact = ExactHits(entries, w);
    std::set<uint64_t> got(ribbon_hits.begin(), ribbon_hits.end());
    std::set<uint64_t> want(exact.begin(), exact.end());
    EXPECT_EQ(got, want);
  }
}

TEST(NodeRibbonTest, SteadyStateProbesDoNotAllocate) {
  StorageEnv env(2048 * kPageSize);
  const auto entries = RandomEntries(20000, 11);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree tree, RStarTree::BulkLoad(env.pool(), "za.rtree", entries,
                                          0.75, NodeLayout::kSoaQuantized));
  ASSERT_EQ(tree.layout(), NodeLayout::kSoaQuantized);

  // The sampled rtree/window_query trace span heap-allocates its name;
  // disable tracing, as a service tuned for steady-state latency would.
  Tracer::Global().set_enabled(false);

  std::vector<Rect> windows;
  Rng rng(12);
  for (int q = 0; q < 64; ++q) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    windows.push_back(
        Rect(x, y, x + rng.NextDouble() * 10, y + rng.NextDouble() * 10));
  }

  // Warm-up pass: registers the metric statics, grows the thread-local
  // probe scratch, and sizes the caller's hits vector to the workload.
  std::vector<uint64_t> hits;
  uint64_t warm_total = 0;
  for (const Rect& w : windows) {
    hits.clear();
    PBSM_ASSERT_OK(tree.WindowQuery(w, &hits));
    warm_total += hits.size();
  }
  ASSERT_GT(warm_total, 0u);

  // Measured pass: the warm probe loop — the indexed-nested-loops inner
  // loop — must not touch the heap at all.
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  uint64_t total = 0;
  for (const Rect& w : windows) {
    hits.clear();
    const Status s = tree.WindowQuery(w, &hits);
    PBSM_CHECK(s.ok());
    total += hits.size();
  }
  g_count_allocs.store(false, std::memory_order_relaxed);
  Tracer::Global().set_enabled(true);

  EXPECT_EQ(total, warm_total);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state ribbon probe touched the heap";
}

TEST(NodeRibbonTest, LayoutKnobResolvesFromEnvironment) {
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "aos", 1), 0);
  EXPECT_EQ(ResolveNodeLayout(NodeLayout::kAuto), NodeLayout::kAos);
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "soa", 1), 0);
  EXPECT_EQ(ResolveNodeLayout(NodeLayout::kAuto), NodeLayout::kSoa);
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "quantized", 1), 0);
  EXPECT_EQ(ResolveNodeLayout(NodeLayout::kAuto), NodeLayout::kSoaQuantized);
  ASSERT_EQ(unsetenv("PBSM_RTREE_LAYOUT"), 0);
  EXPECT_EQ(ResolveNodeLayout(NodeLayout::kAuto), NodeLayout::kSoaQuantized);
  // Explicit requests pass through regardless of the environment.
  ASSERT_EQ(setenv("PBSM_RTREE_LAYOUT", "aos", 1), 0);
  EXPECT_EQ(ResolveNodeLayout(NodeLayout::kSoa), NodeLayout::kSoa);
  ASSERT_EQ(unsetenv("PBSM_RTREE_LAYOUT"), 0);

  EXPECT_EQ(NodeLayoutCacheTag(NodeLayout::kAos), "aos");
  EXPECT_EQ(NodeLayoutCacheTag(NodeLayout::kSoa), "soa.v1");
  EXPECT_EQ(NodeLayoutCacheTag(NodeLayout::kSoaQuantized), "q16.v1");
}

}  // namespace
}  // namespace pbsm
