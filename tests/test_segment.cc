#include "geom/segment.h"

#include <gtest/gtest.h>

namespace pbsm {
namespace {

TEST(OrientationTest, BasicCases) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // CCW.
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1); // CW.
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);   // Collinear.
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {0.5, 0.5}), 0);
}

TEST(PointOnSegmentTest, OnAndOff) {
  const Segment s{{0, 0}, {4, 4}};
  EXPECT_TRUE(PointOnSegment({2, 2}, s));
  EXPECT_TRUE(PointOnSegment({0, 0}, s));  // Endpoint.
  EXPECT_TRUE(PointOnSegment({4, 4}, s));
  EXPECT_FALSE(PointOnSegment({5, 5}, s));  // Collinear but beyond.
  EXPECT_FALSE(PointOnSegment({2, 3}, s));  // Off the line.
}

TEST(SegmentsIntersectTest, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 2}}, {{0, 2}, {2, 0}}));
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3.5}}));
}

TEST(SegmentsIntersectTest, EndpointTouch) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {2, 0}}, {{1, 0}, {1, 5}}));  // T.
}

TEST(SegmentsIntersectTest, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {3, 0}}, {{2, 0}, {5, 0}}));
  EXPECT_TRUE(SegmentsIntersect({{0, 0}, {3, 0}}, {{3, 0}, {5, 0}}));  // Touch.
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {3, 0}}, {{3.1, 0}, {5, 0}}));
  // Collinear but on parallel lines.
  EXPECT_FALSE(SegmentsIntersect({{0, 0}, {3, 0}}, {{0, 1}, {3, 1}}));
}

TEST(SegmentsIntersectTest, Symmetry) {
  const Segment a{{0, 0}, {2, 2}};
  const Segment b{{0, 2}, {2, 0}};
  EXPECT_EQ(SegmentsIntersect(a, b), SegmentsIntersect(b, a));
}

TEST(SegmentIntersectsRectTest, Cases) {
  const Rect r(0, 0, 10, 10);
  // Fully inside.
  EXPECT_TRUE(SegmentIntersectsRect({{1, 1}, {2, 2}}, r));
  // Crossing through without endpoints inside.
  EXPECT_TRUE(SegmentIntersectsRect({{-5, 5}, {15, 5}}, r));
  // Touching a corner.
  EXPECT_TRUE(SegmentIntersectsRect({{-1, 1}, {1, -1}}, r));
  // Fully outside.
  EXPECT_FALSE(SegmentIntersectsRect({{11, 11}, {20, 20}}, r));
  // MBRs overlap but segment passes by the corner.
  EXPECT_FALSE(SegmentIntersectsRect({{-3, 8}, {2, 13}}, r));
  // Empty rect.
  EXPECT_FALSE(SegmentIntersectsRect({{0, 0}, {1, 1}}, Rect()));
}

TEST(SegmentTest, MbrCoversEndpoints) {
  const Segment s{{3, -1}, {-2, 4}};
  const Rect m = s.Mbr();
  EXPECT_EQ(m, Rect(-2, -1, 3, 4));
}

}  // namespace
}  // namespace pbsm
