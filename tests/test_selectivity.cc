#include "core/selectivity.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/rng.h"
#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(SpatialHistogramTest, CountsAndTotals) {
  SpatialHistogram hist(Rect(0, 0, 10, 10), 2, 2);
  hist.Add(Rect(1, 1, 2, 2));    // Bottom-left cell.
  hist.Add(Rect(8, 8, 9, 9));    // Top-right cell.
  hist.Add(Rect(8.5, 1, 9, 2));  // Bottom-right cell.
  EXPECT_EQ(hist.total_count(), 3u);
  // Empty MBRs are ignored.
  hist.Add(Rect());
  EXPECT_EQ(hist.total_count(), 3u);
}

TEST(SpatialHistogramTest, DisjointDataEstimatesZeroJoin) {
  const Rect u(0, 0, 10, 10);
  SpatialHistogram a(u, 4, 4);
  SpatialHistogram b(u, 4, 4);
  // a only in the left half, b only in the right half.
  for (int i = 0; i < 100; ++i) {
    a.Add(Rect(1, 1, 1.2, 1.2));
    b.Add(Rect(8, 8, 8.2, 8.2));
  }
  EXPECT_EQ(a.EstimateJoinCandidates(b), 0.0);
}

TEST(SpatialHistogramTest, UniformGridEstimateIsClose) {
  // Uniform scatter of small squares: the model's assumptions hold, so the
  // estimate should be within ~25% of the truth.
  const Rect u(0, 0, 100, 100);
  SpatialHistogram ha(u, 8, 8);
  SpatialHistogram hb(u, 8, 8);
  Rng rng(7);
  std::vector<Rect> ra, rb;
  auto make = [&](double size) {
    const double x = rng.UniformDouble(0, 100 - size);
    const double y = rng.UniformDouble(0, 100 - size);
    return Rect(x, y, x + size, y + size);
  };
  for (int i = 0; i < 2000; ++i) {
    ra.push_back(make(1.0));
    ha.Add(ra.back());
    rb.push_back(make(1.5));
    hb.Add(rb.back());
  }
  uint64_t actual = 0;
  for (const Rect& x : ra) {
    for (const Rect& y : rb) {
      if (x.Intersects(y)) ++actual;
    }
  }
  const double estimate = ha.EstimateJoinCandidates(hb);
  EXPECT_GT(estimate, 0.75 * static_cast<double>(actual));
  EXPECT_LT(estimate, 1.25 * static_cast<double>(actual));
}

TEST(SpatialHistogramTest, SkewedTigerEstimateWithinSmallFactor) {
  // On the skewed synthetic TIGER data the estimate should land within a
  // small factor of the real filter-step candidate count.
  StorageEnv env(512 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", gen.GenerateRoads(4000)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation hydro,
      LoadRelation(env.pool(), nullptr, "hydro",
                   gen.GenerateHydrography(1500)));
  const Rect universe =
      Rect::Union(roads.info.universe, hydro.info.universe);

  PBSM_ASSERT_OK_AND_ASSIGN(
      const SpatialHistogram hr,
      SpatialHistogram::Build(roads.heap, universe, 32, 32));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const SpatialHistogram hh,
      SpatialHistogram::Build(hydro.heap, universe, 32, 32));
  EXPECT_EQ(hr.total_count(), 4000u);

  JoinSpec spec;
  spec.options.memory_budget_bytes = 4 << 20;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinResult joined,
      SpatialJoin(env.pool(), roads.AsInput(), hydro.AsInput(), spec));
  const double actual = static_cast<double>(
      joined.breakdown.candidates - joined.breakdown.duplicates_removed);
  ASSERT_GT(actual, 0.0);
  const double estimate = hr.EstimateJoinCandidates(hh);
  EXPECT_GT(estimate, actual / 4.0) << "estimate " << estimate
                                    << " vs actual " << actual;
  EXPECT_LT(estimate, actual * 4.0) << "estimate " << estimate
                                    << " vs actual " << actual;
}

TEST(SpatialHistogramTest, WindowEstimates) {
  const Rect u(0, 0, 10, 10);
  SpatialHistogram hist(u, 5, 5);
  // 500 unit squares uniform over the universe.
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.UniformDouble(0, 9);
    const double y = rng.UniformDouble(0, 9);
    hist.Add(Rect(x, y, x + 1, y + 1));
  }
  // The full universe window covers everything.
  EXPECT_NEAR(hist.EstimateWindowCount(Rect(-2, -2, 12, 12)), 500.0, 1.0);
  // A quarter window should see roughly a quarter (+ boundary effects).
  const double quarter = hist.EstimateWindowCount(Rect(0, 0, 5, 5));
  EXPECT_GT(quarter, 90.0);
  EXPECT_LT(quarter, 220.0);
  // Empty window.
  EXPECT_EQ(hist.EstimateWindowCount(Rect()), 0.0);
}

}  // namespace
}  // namespace pbsm
