// Sharded service tests: scatter-gather correctness against the
// single-shard oracle, concurrent multi-client traffic, mid-flight
// cancellation reaching every shard, graceful drain, whole-query
// backpressure, and forced-skew straggler mitigation (partition stealing
// and speculative re-dispatch). Runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "service/join_router.h"
#include "service/shard_manager.h"
#include "tests/join_test_harness.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

class ShardServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 42;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(1200);
    hydro_ = gen.GenerateHydrography(500);
  }

  /// Global (caller-side) relations + a ShardManager with both registered.
  struct Env {
    StorageEnv storage{4096 * kPageSize};
    std::optional<StoredRelation> road, hydro;
    std::optional<ShardManager> shards;
    std::map<uint64_t, uint64_t> road_ids, hydro_ids;  // Global OID -> id.
  };

  void Start(Env* env, uint32_t num_shards) {
    auto road = LoadRelation(env->storage.pool(), nullptr, "road", roads_);
    ASSERT_TRUE(road.ok()) << road.status().ToString();
    env->road.emplace(std::move(road).value());
    auto hydro = LoadRelation(env->storage.pool(), nullptr, "hydro", hydro_);
    ASSERT_TRUE(hydro.ok()) << hydro.status().ToString();
    env->hydro.emplace(std::move(hydro).value());

    ShardManagerConfig config;
    config.num_shards = num_shards;
    env->shards.emplace(config);
    PBSM_ASSERT_OK(env->shards->RegisterDataset("road", &env->road->heap,
                                                env->road->info));
    PBSM_ASSERT_OK(env->shards->RegisterDataset("hydro", &env->hydro->heap,
                                                env->hydro->info));

    PBSM_ASSERT_OK_AND_ASSIGN(env->road_ids, OidToIdMap(env->road->heap));
    PBSM_ASSERT_OK_AND_ASSIGN(env->hydro_ids, OidToIdMap(env->hydro->heap));
  }

  /// Executes `request` on the router with a thread-safe collecting sink
  /// (router sinks run concurrently from shard workers) and returns the
  /// pairs in tuple-id space.
  Result<IdPairSet> RunToIdPairs(JoinRouter* router, Env* env,
                                 JoinRequest request,
                                 JoinResponse* response_out = nullptr) {
    std::mutex mutex;
    std::vector<std::pair<Oid, Oid>> raw;
    request.sink = [&mutex, &raw](Oid ro, Oid so) {
      std::lock_guard<std::mutex> lock(mutex);
      raw.emplace_back(ro, so);
    };
    PBSM_ASSIGN_OR_RETURN(const JoinResponse response,
                          router->Execute(std::move(request)));
    if (response_out != nullptr) *response_out = response;
    IdPairSet out;
    for (const auto& [ro, so] : raw) {
      out.emplace(env->road_ids.at(ro.Encode()),
                  env->hydro_ids.at(so.Encode()));
    }
    EXPECT_EQ(out.size(), response.num_results)
        << "duplicate or dropped pairs across the gather";
    return out;
  }

  void ExpectZeroPinnedPerShard(const Env& env) {
    for (uint32_t i = 0; i < env.shards->num_shards(); ++i) {
      EXPECT_EQ(env.shards->shard(i).pool->pinned_frames(), 0u)
          << "shard " << i << " leaked pinned frames";
    }
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
};

TEST_F(ShardServiceTest, ScatterGatherMatchesOracleForcedAndPlanned) {
  Env env;
  Start(&env, 4);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);

  JoinRouter router(&*env.shards, {});
  JoinRequest forced;
  forced.r_dataset = "road";
  forced.s_dataset = "hydro";
  forced.method = JoinMethod::kPbsm;
  JoinResponse response;
  PBSM_ASSERT_OK_AND_ASSIGN(const IdPairSet got,
                            RunToIdPairs(&router, &env, forced, &response));
  EXPECT_EQ(got, oracle);
  EXPECT_EQ(response.shard_slices.size(), 4u);
  uint64_t slice_sum = 0;
  for (const ShardSliceStats& slice : response.shard_slices) {
    slice_sum += slice.num_results;
  }
  EXPECT_EQ(slice_sum, oracle.size());

  // Planner path: per-shard plans, same gathered pairs.
  JoinRequest planned;
  planned.r_dataset = "road";
  planned.s_dataset = "hydro";
  JoinResponse planned_response;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const IdPairSet planned_got,
      RunToIdPairs(&router, &env, planned, &planned_response));
  EXPECT_EQ(planned_got, oracle);
  EXPECT_TRUE(planned_response.planner_chosen);
  EXPECT_FALSE(planned_response.plan.empty());

  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, ConcurrentMultiClientScatterGather) {
  Env env;
  Start(&env, 4);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);

  JoinRouterConfig config;
  config.workers_per_shard = 1;
  JoinRouter router(&*env.shards, config);

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 3;
  const std::vector<JoinMethod> methods = {
      JoinMethod::kPbsm, JoinMethod::kRtree, JoinMethod::kSpatialHash};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        JoinRequest request;
        request.r_dataset = "road";
        request.s_dataset = "hydro";
        request.method = methods[(c + q) % methods.size()];
        request.priority = (c % 2 == 0) ? QueryPriority::kInteractive
                                        : QueryPriority::kBatch;
        auto response = router.Execute(std::move(request));
        // Backpressure rejections are legal under this load; anything else
        // must succeed with the oracle count.
        if (!response.ok()) {
          if (response.status().code() != StatusCode::kResourceExhausted) {
            ++failures;
          }
          continue;
        }
        if (response->num_results != oracle.size()) ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, MidFlightCancellationReachesAllShards) {
  Env env;
  Start(&env, 4);
  JoinRouter router(&*env.shards, {});

  // The sink blocks the shard workers on their first emitted pair until the
  // main thread has cancelled — guaranteeing the cancel lands mid-flight.
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;
  request.sink = [&](Oid, Oid) {
    std::unique_lock<std::mutex> lock(mutex);
    started = true;
    cv.notify_all();
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
  };

  PBSM_ASSERT_OK_AND_ASSIGN(const std::shared_ptr<RouterQuery> query,
                            router.Submit(std::move(request)));
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(30), [&] { return started; }));
  }
  query->Cancel();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  }
  const Result<JoinResponse>& result = query->Wait();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // Every shard worker must have unwound: no pinned frames anywhere, and
  // the router still serves new queries.
  ExpectZeroPinnedPerShard(env);
  JoinRequest after;
  after.r_dataset = "road";
  after.s_dataset = "hydro";
  after.method = JoinMethod::kPbsm;
  PBSM_ASSERT_OK_AND_ASSIGN(const JoinResponse ok_response,
                            router.Execute(std::move(after)));
  EXPECT_GT(ok_response.num_results, 0u);
  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, GracefulDrainCompletesEverythingQueued) {
  Env env;
  Start(&env, 2);
  const IdPairSet oracle =
      BruteForceJoin(roads_, hydro_, SpatialPredicate::kIntersects);

  JoinRouterConfig config;
  config.workers_per_shard = 1;
  JoinRouter router(&*env.shards, config);

  std::vector<std::shared_ptr<RouterQuery>> queries;
  for (int i = 0; i < 6; ++i) {
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kPbsm;
    PBSM_ASSERT_OK_AND_ASSIGN(std::shared_ptr<RouterQuery> query,
                              router.Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  router.Shutdown(/*drain=*/true);
  for (const auto& query : queries) {
    const Result<JoinResponse>& result = query->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->num_results, oracle.size());
  }
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, AbortShutdownSettlesEveryQuery) {
  Env env;
  Start(&env, 2);
  JoinRouter router(&*env.shards, {});

  std::vector<std::shared_ptr<RouterQuery>> queries;
  for (int i = 0; i < 8; ++i) {
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kPbsm;
    PBSM_ASSERT_OK_AND_ASSIGN(std::shared_ptr<RouterQuery> query,
                              router.Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  router.Shutdown(/*drain=*/false);
  for (const auto& query : queries) {
    // Every ticket settles: either it ran to completion before the abort or
    // it was cancelled — but nothing hangs and nothing leaks.
    const Result<JoinResponse>& result = query->Wait();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    }
  }
  ExpectZeroPinnedPerShard(env);
  // Post-shutdown submits are refused cleanly.
  JoinRequest late;
  late.r_dataset = "road";
  late.s_dataset = "hydro";
  const auto refused = router.Submit(std::move(late));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ShardServiceTest, WindowClippedDispatchRunsOnlyOverlappingShards) {
  Env env;
  Start(&env, 4);
  const ShardLayout layout = env.shards->layout();
  ASSERT_EQ(layout.num_shards(), 4u);

  // A window strictly inside shard 2's strip: exactly one sub-join.
  const Rect strip = layout.Extent(2);
  const double margin = strip.width() / 8;
  const Rect window(strip.xlo + margin, strip.ylo, strip.xhi - margin,
                    strip.yhi);
  const IdPairSet oracle =
      WindowOracle(roads_, hydro_, SpatialPredicate::kIntersects, window);

  JoinRouter router(&*env.shards, {});
  JoinRequest request;
  request.r_dataset = "road";
  request.s_dataset = "hydro";
  request.method = JoinMethod::kPbsm;
  request.window = window;
  JoinResponse response;
  PBSM_ASSERT_OK_AND_ASSIGN(const IdPairSet got,
                            RunToIdPairs(&router, &env, request, &response));
  EXPECT_EQ(got, oracle);
  ASSERT_EQ(response.shard_slices.size(), 1u);
  EXPECT_EQ(response.shard_slices[0].shard, 2u);
  router.Shutdown(/*drain=*/true);
}

TEST_F(ShardServiceTest, BackpressureRejectsWholeQueryAndRecovers) {
  Env env;
  Start(&env, 2);
  JoinRouterConfig config;
  config.workers_per_shard = 1;
  config.queue_capacity = 2;
  config.enable_stealing = false;  // Keep the queues deterministically full.
  JoinRouter router(&*env.shards, config);

  // Block both shard workers mid-query, then fill every queue.
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  JoinRequest blocker;
  blocker.r_dataset = "road";
  blocker.s_dataset = "hydro";
  blocker.method = JoinMethod::kPbsm;
  blocker.sink = [&](Oid, Oid) {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
  };
  PBSM_ASSERT_OK_AND_ASSIGN(const std::shared_ptr<RouterQuery> running,
                            router.Submit(std::move(blocker)));
  // Give the workers a moment to pop the blocker's sub-joins.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<std::shared_ptr<RouterQuery>> queued;
  for (int i = 0; i < 2; ++i) {  // queue_capacity per shard.
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kPbsm;
    PBSM_ASSERT_OK_AND_ASSIGN(std::shared_ptr<RouterQuery> query,
                              router.Submit(std::move(request)));
    queued.push_back(std::move(query));
  }
  JoinRequest overflow;
  overflow.r_dataset = "road";
  overflow.s_dataset = "hydro";
  overflow.method = JoinMethod::kPbsm;
  const auto rejected = router.Submit(std::move(overflow));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
    cv.notify_all();
  }
  EXPECT_TRUE(running->Wait().ok());
  for (const auto& query : queued) {
    EXPECT_TRUE(query->Wait().ok()) << query->Wait().status().ToString();
  }
  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, StealingDrainsForcedSkew) {
  Env env;
  Start(&env, 4);
  const ShardLayout layout = env.shards->layout();

  // Forced skew: every query's window lives strictly inside shard 0's
  // strip, so all sub-joins land on shard 0's queue while workers 1..3
  // start idle — exactly the straggler scenario stealing exists for.
  const Rect strip = layout.Extent(0);
  const double margin = strip.width() / 8;
  const Rect window(strip.xlo + margin, strip.ylo, strip.xhi - margin,
                    strip.yhi);
  const IdPairSet oracle =
      WindowOracle(roads_, hydro_, SpatialPredicate::kIntersects, window);

  Counter* stolen =
      MetricsRegistry::Global().GetCounter("service.shard.stolen_partitions");
  const uint64_t stolen_before = stolen->Value();

  JoinRouterConfig config;
  config.workers_per_shard = 1;
  config.steal_poll_seconds = 0.001;
  JoinRouter router(&*env.shards, config);

  std::vector<std::shared_ptr<RouterQuery>> queries;
  for (int i = 0; i < 16; ++i) {
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kPbsm;
    request.window = window;
    PBSM_ASSERT_OK_AND_ASSIGN(std::shared_ptr<RouterQuery> query,
                              router.Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  for (const auto& query : queries) {
    const Result<JoinResponse>& result = query->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->num_results, oracle.size());
    ASSERT_EQ(result->shard_slices.size(), 1u);
    EXPECT_EQ(result->shard_slices[0].shard, 0u);
  }
  EXPECT_GT(stolen->Value(), stolen_before)
      << "idle sibling workers never stole from the skewed shard";

  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, SpeculativeRedispatchMovesQueuedStragglers) {
  Env env;
  Start(&env, 4);
  const ShardLayout layout = env.shards->layout();
  const Rect strip = layout.Extent(0);
  const double margin = strip.width() / 8;
  const Rect window(strip.xlo + margin, strip.ylo, strip.xhi - margin,
                    strip.yhi);
  const IdPairSet oracle =
      WindowOracle(roads_, hydro_, SpatialPredicate::kIntersects, window);

  Counter* redispatches =
      MetricsRegistry::Global().GetCounter("service.shard.redispatches");
  const uint64_t before = redispatches->Value();

  // Stealing off: the only path off the skewed queue is the monitor's
  // deadline-driven speculative re-dispatch.
  JoinRouterConfig config;
  config.workers_per_shard = 1;
  config.enable_stealing = false;
  config.speculative_deadline_seconds = 0.002;
  JoinRouter router(&*env.shards, config);

  std::vector<std::shared_ptr<RouterQuery>> queries;
  for (int i = 0; i < 12; ++i) {
    JoinRequest request;
    request.r_dataset = "road";
    request.s_dataset = "hydro";
    request.method = JoinMethod::kPbsm;
    request.window = window;
    PBSM_ASSERT_OK_AND_ASSIGN(std::shared_ptr<RouterQuery> query,
                              router.Submit(std::move(request)));
    queries.push_back(std::move(query));
  }
  for (const auto& query : queries) {
    const Result<JoinResponse>& result = query->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->num_results, oracle.size());
  }
  EXPECT_GT(redispatches->Value(), before)
      << "monitor never re-dispatched a queued straggler";

  router.Shutdown(/*drain=*/true);
  ExpectZeroPinnedPerShard(env);
}

TEST_F(ShardServiceTest, UnknownDatasetAndTimeoutsAreRejected) {
  Env env;
  Start(&env, 2);
  JoinRouter router(&*env.shards, {});

  JoinRequest unknown;
  unknown.r_dataset = "nope";
  unknown.s_dataset = "hydro";
  const auto not_found = router.Submit(std::move(unknown));
  ASSERT_FALSE(not_found.ok());
  EXPECT_EQ(not_found.status().code(), StatusCode::kNotFound);

  JoinRequest negative;
  negative.r_dataset = "road";
  negative.s_dataset = "hydro";
  negative.timeout_seconds = -1.0;
  const auto invalid = router.Submit(std::move(negative));
  ASSERT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.status().code(), StatusCode::kInvalidArgument);
  router.Shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace pbsm
