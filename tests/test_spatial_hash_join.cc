#include "core/spatial_hash_join.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/pbsm_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

class SpatialHashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));

    JoinOptions opts;
    opts.memory_budget_bytes = 1 << 20;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        PbsmJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                 SpatialPredicate::kIntersects, opts,
                 [&](Oid r, Oid s) {
                   expected_.emplace(r.Encode(), s.Encode());
                 }));
    (void)cost;
    ASSERT_GT(expected_.size(), 0u);
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
  PairSet expected_;
};

TEST_F(SpatialHashJoinTest, MatchesPbsmAcrossBucketCounts) {
  for (const uint32_t buckets : {1u, 2u, 4u, 16u}) {
    SpatialHashJoinOptions opts;
    opts.num_buckets = buckets;
    opts.join.memory_budget_bytes = 1 << 20;
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        SpatialHashJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                        SpatialPredicate::kIntersects, opts,
                        [&](Oid r, Oid s) {
                          got.emplace(r.Encode(), s.Encode());
                        }));
    EXPECT_EQ(got, expected_) << buckets << " buckets";
    EXPECT_EQ(cost.results, expected_.size());
    EXPECT_EQ(cost.num_partitions, buckets);
    // R is never replicated in the spatial hash join: a pair can only be
    // produced once, so the refinement sort finds no duplicates.
    EXPECT_EQ(cost.duplicates_removed, 0u) << buckets << " buckets";
  }
}

TEST_F(SpatialHashJoinTest, TinyBudgetChunkedSweepStillMatches) {
  SpatialHashJoinOptions opts;
  opts.num_buckets = 3;
  opts.join.memory_budget_bytes = 8 << 10;  // Forces chunked bucket joins.
  PairSet got;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      SpatialHashJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                      SpatialPredicate::kIntersects, opts,
                      [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); }));
  (void)cost;
  EXPECT_EQ(got, expected_);
}

TEST_F(SpatialHashJoinTest, SampleFractionDoesNotChangeResults) {
  for (const double fraction : {0.002, 0.05, 0.5}) {
    SpatialHashJoinOptions opts;
    opts.num_buckets = 8;
    opts.sample_fraction = fraction;
    opts.join.memory_budget_bytes = 1 << 20;
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        SpatialHashJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                        SpatialPredicate::kIntersects, opts,
                        [&](Oid r, Oid s) {
                          got.emplace(r.Encode(), s.Encode());
                        }));
    (void)cost;
    EXPECT_EQ(got, expected_) << "fraction " << fraction;
  }
}

TEST(SpatialHashJoinContainsTest, ContainmentJoinMatches) {
  StorageEnv env(512 * kPageSize);
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation polys,
      LoadRelation(env.pool(), nullptr, "poly", gen.GeneratePolygons(150)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation islands,
      LoadRelation(env.pool(), nullptr, "island", gen.GenerateIslands(200)));
  JoinOptions jopts;
  jopts.memory_budget_bytes = 1 << 20;
  PairSet expected;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref,
      PbsmJoin(env.pool(), polys.AsInput(), islands.AsInput(),
               SpatialPredicate::kContains, jopts,
               [&](Oid r, Oid s) { expected.emplace(r.Encode(), s.Encode()); }));
  (void)ref;
  SpatialHashJoinOptions opts;
  opts.num_buckets = 5;
  opts.join = jopts;
  PairSet got;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      SpatialHashJoin(env.pool(), polys.AsInput(), islands.AsInput(),
                      SpatialPredicate::kContains, opts,
                      [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); }));
  (void)cost;
  EXPECT_EQ(got, expected);
}

TEST(SpatialHashJoinEdgeTest, EmptyInputs) {
  StorageEnv env(256 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", gen.GenerateRoads(100)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation empty,
      LoadRelation(env.pool(), nullptr, "empty", std::vector<Tuple>{}));
  SpatialHashJoinOptions opts;
  opts.num_buckets = 4;
  // Empty S: zero results.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      SpatialHashJoin(env.pool(), roads.AsInput(), empty.AsInput(),
                      SpatialPredicate::kIntersects, opts));
  EXPECT_EQ(cost.results, 0u);
  // Empty R with a non-empty universe union still works.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost2,
      SpatialHashJoin(env.pool(), empty.AsInput(), roads.AsInput(),
                      SpatialPredicate::kIntersects, opts));
  EXPECT_EQ(cost2.results, 0u);
}

}  // namespace
}  // namespace pbsm
