#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// Runs the facade and unwraps the cost breakdown.
Result<JoinCostBreakdown> RunJoin(BufferPool* pool, const JoinInput& r,
                                  const JoinInput& s, const JoinSpec& spec) {
  PBSM_ASSIGN_OR_RETURN(JoinResult result, SpatialJoin(pool, r, s, spec));
  return std::move(result.breakdown);
}

ResultSink Collect(PairSet* out) {
  return [out](Oid r, Oid s) { out->emplace(r.Encode(), s.Encode()); };
}

class SpatialHashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));

    JoinSpec spec;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.sink = Collect(&expected_);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(), spec));
    (void)cost;
    ASSERT_GT(expected_.size(), 0u);
  }

  JoinSpec HashSpec(uint32_t num_buckets, PairSet* out) {
    JoinSpec spec;
    spec.method = JoinMethod::kSpatialHash;
    spec.hash.num_buckets = num_buckets;
    spec.options.memory_budget_bytes = 1 << 20;
    if (out != nullptr) spec.sink = Collect(out);
    return spec;
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
  PairSet expected_;
};

TEST_F(SpatialHashJoinTest, MatchesPbsmAcrossBucketCounts) {
  for (const uint32_t buckets : {1u, 2u, 4u, 16u}) {
    PairSet got;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                HashSpec(buckets, &got)));
    EXPECT_EQ(got, expected_) << buckets << " buckets";
    EXPECT_EQ(cost.results, expected_.size());
    EXPECT_EQ(cost.num_partitions, buckets);
    // R is never replicated in the spatial hash join: a pair can only be
    // produced once, so the refinement sort finds no duplicates.
    EXPECT_EQ(cost.duplicates_removed, 0u) << buckets << " buckets";
  }
}

TEST_F(SpatialHashJoinTest, TinyBudgetChunkedSweepStillMatches) {
  PairSet got;
  JoinSpec spec = HashSpec(3, &got);
  spec.options.memory_budget_bytes = 8 << 10;  // Forces chunked bucket joins.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(), spec));
  (void)cost;
  EXPECT_EQ(got, expected_);
}

TEST_F(SpatialHashJoinTest, SampleFractionDoesNotChangeResults) {
  for (const double fraction : {0.002, 0.05, 0.5}) {
    PairSet got;
    JoinSpec spec = HashSpec(8, &got);
    spec.hash.sample_fraction = fraction;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(), spec));
    (void)cost;
    EXPECT_EQ(got, expected_) << "fraction " << fraction;
  }
}

TEST(SpatialHashJoinContainsTest, ContainmentJoinMatches) {
  StorageEnv env(512 * kPageSize);
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation polys,
      LoadRelation(env.pool(), nullptr, "poly", gen.GeneratePolygons(150)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation islands,
      LoadRelation(env.pool(), nullptr, "island", gen.GenerateIslands(200)));
  PairSet expected;
  JoinSpec ref_spec;
  ref_spec.predicate = SpatialPredicate::kContains;
  ref_spec.options.memory_budget_bytes = 1 << 20;
  ref_spec.sink = Collect(&expected);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref,
      RunJoin(env.pool(), polys.AsInput(), islands.AsInput(), ref_spec));
  (void)ref;

  PairSet got;
  JoinSpec spec;
  spec.method = JoinMethod::kSpatialHash;
  spec.predicate = SpatialPredicate::kContains;
  spec.hash.num_buckets = 5;
  spec.options.memory_budget_bytes = 1 << 20;
  spec.sink = Collect(&got);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env.pool(), polys.AsInput(), islands.AsInput(), spec));
  (void)cost;
  EXPECT_EQ(got, expected);
}

TEST(SpatialHashJoinEdgeTest, EmptyInputs) {
  StorageEnv env(256 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation roads,
      LoadRelation(env.pool(), nullptr, "road", gen.GenerateRoads(100)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation empty,
      LoadRelation(env.pool(), nullptr, "empty", std::vector<Tuple>{}));
  JoinSpec spec;
  spec.method = JoinMethod::kSpatialHash;
  spec.hash.num_buckets = 4;
  // Empty S: zero results.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env.pool(), roads.AsInput(), empty.AsInput(), spec));
  EXPECT_EQ(cost.results, 0u);
  // Empty R with a non-empty universe union still works.
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost2,
      RunJoin(env.pool(), empty.AsInput(), roads.AsInput(), spec));
  EXPECT_EQ(cost2.results, 0u);
}

}  // namespace
}  // namespace pbsm
