#include "core/spatial_join.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "core/index_build.h"
#include "core/inl_join.h"
#include "core/pbsm_join.h"
#include "core/rtree_join.h"
#include "core/spatial_hash_join.h"
#include "core/zorder_join.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

ResultSink Collect(PairSet* out) {
  return [out](Oid r, Oid s) { out->emplace(r.Encode(), s.Encode()); };
}

class SpatialJoinApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 1337;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(600);
    hydro_ = gen.GenerateHydrography(250);
  }

  JoinSpec BaseSpec(JoinMethod method) const {
    JoinSpec spec;
    spec.method = method;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.options.num_tiles = 256;
    return spec;
  }

  /// Loads both relations into `env` and runs the facade.
  JoinResult RunFacade(StorageEnv* env, JoinSpec spec, PairSet* pairs) {
    auto r = LoadRelation(env->pool(), nullptr, "road", roads_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto s = LoadRelation(env->pool(), nullptr, "hydro", hydro_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    if (pairs != nullptr) spec.sink = Collect(pairs);
    auto result = SpatialJoin(env->pool(), r->AsInput(), s->AsInput(), spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
};

TEST_F(SpatialJoinApiTest, MethodNamesRoundTrip) {
  for (const JoinMethod m :
       {JoinMethod::kPbsm, JoinMethod::kParallelPbsm, JoinMethod::kInl,
        JoinMethod::kRtree, JoinMethod::kSpatialHash, JoinMethod::kZOrder}) {
    const auto parsed = ParseJoinMethod(JoinMethodName(m));
    ASSERT_TRUE(parsed.has_value()) << JoinMethodName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseJoinMethod("quadtree").has_value());
}

TEST_F(SpatialJoinApiTest, AllSixMethodsAgreeOnPairSet) {
  // Ground truth from the legacy serial PBSM entry point.
  PairSet expected;
  {
    StorageEnv env(512 * kPageSize);
    auto r = LoadRelation(env.pool(), nullptr, "road", roads_);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto s = LoadRelation(env.pool(), nullptr, "hydro", hydro_);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    JoinOptions opts;
    opts.memory_budget_bytes = 1 << 20;
    opts.num_tiles = 256;
    auto cost = PbsmJoin(env.pool(), r->AsInput(), s->AsInput(),
                         SpatialPredicate::kIntersects, opts,
                         Collect(&expected));
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
  }
  ASSERT_GT(expected.size(), 0u) << "seed data produces no join results";

  for (const JoinMethod m :
       {JoinMethod::kPbsm, JoinMethod::kParallelPbsm, JoinMethod::kInl,
        JoinMethod::kRtree, JoinMethod::kSpatialHash, JoinMethod::kZOrder}) {
    StorageEnv env(512 * kPageSize);
    PairSet pairs;
    const JoinResult result = RunFacade(&env, BaseSpec(m), &pairs);
    EXPECT_EQ(pairs, expected) << "method " << JoinMethodName(m);
    EXPECT_EQ(result.num_results, expected.size())
        << "method " << JoinMethodName(m);
    EXPECT_EQ(result.method, m);
    EXPECT_GT(result.wall_seconds, 0.0);
  }
}

TEST_F(SpatialJoinApiTest, FacadeMatchesLegacyEntryPointCounts) {
  // Each facade run must report exactly the result count of the legacy
  // entry point it wraps (same data, fresh storage each time).
  JoinOptions opts;
  opts.memory_budget_bytes = 1 << 20;
  opts.num_tiles = 256;

  uint64_t legacy_counts[3];
  {
    StorageEnv env(512 * kPageSize);
    auto r = LoadRelation(env.pool(), nullptr, "road", roads_);
    ASSERT_TRUE(r.ok());
    auto s = LoadRelation(env.pool(), nullptr, "hydro", hydro_);
    ASSERT_TRUE(s.ok());
    auto rtree = RtreeJoin(env.pool(), r->AsInput(), s->AsInput(),
                           SpatialPredicate::kIntersects, opts);
    ASSERT_TRUE(rtree.ok()) << rtree.status().ToString();
    legacy_counts[0] = rtree->results;
    // Legacy INL convention: index the smaller input (S), probe with R.
    auto inl = IndexedNestedLoopsJoin(env.pool(), s->AsInput(), r->AsInput(),
                                      SpatialPredicate::kIntersects, opts,
                                      /*sink=*/{},
                                      /*preexisting_index=*/nullptr,
                                      /*indexed_is_left=*/false);
    ASSERT_TRUE(inl.ok()) << inl.status().ToString();
    legacy_counts[1] = inl->results;
    SpatialHashJoinOptions hash_opts;
    hash_opts.join = opts;
    auto hash = SpatialHashJoin(env.pool(), r->AsInput(), s->AsInput(),
                                SpatialPredicate::kIntersects, hash_opts);
    ASSERT_TRUE(hash.ok()) << hash.status().ToString();
    legacy_counts[2] = hash->results;
  }

  const JoinMethod methods[3] = {JoinMethod::kRtree, JoinMethod::kInl,
                                 JoinMethod::kSpatialHash};
  for (int i = 0; i < 3; ++i) {
    StorageEnv env(512 * kPageSize);
    const JoinResult result = RunFacade(&env, BaseSpec(methods[i]), nullptr);
    EXPECT_EQ(result.num_results, legacy_counts[i])
        << "method " << JoinMethodName(methods[i]);
  }
}

TEST_F(SpatialJoinApiTest, InlSinkPairsAreOrientedRtoS) {
  // The facade indexes the smaller side (hydro == s) for kInl, but emitted
  // pairs must still be (road_oid, hydro_oid). Cross-check against PBSM.
  StorageEnv env_a(512 * kPageSize);
  PairSet pbsm_pairs;
  RunFacade(&env_a, BaseSpec(JoinMethod::kPbsm), &pbsm_pairs);
  StorageEnv env_b(512 * kPageSize);
  PairSet inl_pairs;
  RunFacade(&env_b, BaseSpec(JoinMethod::kInl), &inl_pairs);
  EXPECT_EQ(inl_pairs, pbsm_pairs);
}

TEST_F(SpatialJoinApiTest, ResultCarriesMetricsDelta) {
  StorageEnv env(512 * kPageSize);
  const JoinResult result =
      RunFacade(&env, BaseSpec(JoinMethod::kPbsm), nullptr);
  // The delta must reflect this join's own activity, not process history.
  EXPECT_GT(result.metrics.counter("storage.bufferpool.hits") +
                result.metrics.counter("storage.bufferpool.misses"),
            0u);
  EXPECT_EQ(result.metrics.counter("join.results"), result.num_results);
  EXPECT_EQ(result.metrics.counter("join.refine.true_positives"),
            result.num_results);
  EXPECT_EQ(result.metrics.counter("join.runs.pbsm"), 1u);
}

TEST_F(SpatialJoinApiTest, TraceSpansCoverJoinPhases) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  StorageEnv env(512 * kPageSize);
  RunFacade(&env, BaseSpec(JoinMethod::kPbsm), nullptr);
  bool found_join = false, found_refinement = false;
  for (const SpanRecord& span : tracer.FinishedSpans()) {
    if (span.name == "join/pbsm") found_join = true;
    if (span.name == "refinement") found_refinement = true;
  }
  EXPECT_TRUE(found_join);
  EXPECT_TRUE(found_refinement);
}

TEST_F(SpatialJoinApiTest, PreexistingIndexIsUsed) {
  StorageEnv env(512 * kPageSize);
  auto r = LoadRelation(env.pool(), nullptr, "road", roads_);
  ASSERT_TRUE(r.ok());
  auto s = LoadRelation(env.pool(), nullptr, "hydro", hydro_);
  ASSERT_TRUE(s.ok());
  JoinSpec spec = BaseSpec(JoinMethod::kInl);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree index,
      BuildIndexByBulkLoad(env.pool(), r->AsInput(), "pre_r.rtree",
                           spec.options.index_fill_factor));
  spec.r_index = &index;
  PairSet with_index;
  spec.sink = Collect(&with_index);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinResult result,
      SpatialJoin(env.pool(), r->AsInput(), s->AsInput(), spec));
  EXPECT_EQ(with_index.size(), result.num_results);
  // No "build index" phase when the index is supplied.
  for (const auto& [name, cost] : result.breakdown.phases) {
    EXPECT_EQ(name.find("build index"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace pbsm
