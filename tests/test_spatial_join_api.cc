#include "core/spatial_join.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "core/index_build.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

ResultSink Collect(PairSet* out) {
  return [out](Oid r, Oid s) { out->emplace(r.Encode(), s.Encode()); };
}

class SpatialJoinApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TigerGenerator::Params params;
    params.seed = 1337;
    TigerGenerator gen(params);
    roads_ = gen.GenerateRoads(600);
    hydro_ = gen.GenerateHydrography(250);
  }

  JoinSpec BaseSpec(JoinMethod method) const {
    JoinSpec spec;
    spec.method = method;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.options.num_tiles = 256;
    return spec;
  }

  /// Loads both relations into `env` and runs the facade.
  JoinResult RunFacade(StorageEnv* env, JoinSpec spec, PairSet* pairs) {
    auto r = LoadRelation(env->pool(), nullptr, "road", roads_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    auto s = LoadRelation(env->pool(), nullptr, "hydro", hydro_);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    if (pairs != nullptr) spec.sink = Collect(pairs);
    auto result = SpatialJoin(env->pool(), r->AsInput(), s->AsInput(), spec);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  std::vector<Tuple> roads_;
  std::vector<Tuple> hydro_;
};

TEST_F(SpatialJoinApiTest, MethodNamesRoundTrip) {
  for (const JoinMethod m :
       {JoinMethod::kPbsm, JoinMethod::kParallelPbsm, JoinMethod::kInl,
        JoinMethod::kRtree, JoinMethod::kSpatialHash, JoinMethod::kZOrder}) {
    const auto parsed = ParseJoinMethod(JoinMethodName(m));
    ASSERT_TRUE(parsed.has_value()) << JoinMethodName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseJoinMethod("quadtree").has_value());
}

TEST_F(SpatialJoinApiTest, RefineModeNamesRoundTrip) {
  for (const RefineMode m : {RefineMode::kExact, RefineMode::kAdaptive,
                             RefineMode::kApproximate}) {
    const auto parsed = ParseRefineMode(RefineModeName(m));
    ASSERT_TRUE(parsed.ok()) << RefineModeName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(*ParseRefineMode("approx"), RefineMode::kApproximate);
  EXPECT_FALSE(ParseRefineMode("fuzzy").ok());
}

TEST_F(SpatialJoinApiTest, AllSixMethodsAgreeOnPairSet) {
  // Ground truth: serial PBSM through the facade.
  PairSet expected;
  {
    StorageEnv env(512 * kPageSize);
    RunFacade(&env, BaseSpec(JoinMethod::kPbsm), &expected);
  }
  ASSERT_GT(expected.size(), 0u) << "seed data produces no join results";

  for (const JoinMethod m :
       {JoinMethod::kPbsm, JoinMethod::kParallelPbsm, JoinMethod::kInl,
        JoinMethod::kRtree, JoinMethod::kSpatialHash, JoinMethod::kZOrder}) {
    StorageEnv env(512 * kPageSize);
    PairSet pairs;
    const JoinResult result = RunFacade(&env, BaseSpec(m), &pairs);
    EXPECT_EQ(pairs, expected) << "method " << JoinMethodName(m);
    EXPECT_EQ(result.num_results, expected.size())
        << "method " << JoinMethodName(m);
    EXPECT_EQ(result.method, m);
    EXPECT_GT(result.wall_seconds, 0.0);
  }
}

TEST_F(SpatialJoinApiTest, ResultsAreDeterministicAcrossEnvironments) {
  // Same data, fresh storage: every method must report identical counts on
  // repeat runs (the facade owns all remaining join entry points, so this
  // pins down end-to-end reproducibility).
  for (const JoinMethod m : {JoinMethod::kRtree, JoinMethod::kInl,
                             JoinMethod::kSpatialHash}) {
    uint64_t counts[2];
    for (int i = 0; i < 2; ++i) {
      StorageEnv env(512 * kPageSize);
      counts[i] = RunFacade(&env, BaseSpec(m), nullptr).num_results;
    }
    EXPECT_EQ(counts[0], counts[1]) << "method " << JoinMethodName(m);
    EXPECT_GT(counts[0], 0u);
  }
}

TEST_F(SpatialJoinApiTest, InlSinkPairsAreOrientedRtoS) {
  // The facade indexes the smaller side (hydro == s) for kInl, but emitted
  // pairs must still be (road_oid, hydro_oid). Cross-check against PBSM.
  StorageEnv env_a(512 * kPageSize);
  PairSet pbsm_pairs;
  RunFacade(&env_a, BaseSpec(JoinMethod::kPbsm), &pbsm_pairs);
  StorageEnv env_b(512 * kPageSize);
  PairSet inl_pairs;
  RunFacade(&env_b, BaseSpec(JoinMethod::kInl), &inl_pairs);
  EXPECT_EQ(inl_pairs, pbsm_pairs);
}

TEST_F(SpatialJoinApiTest, ResultCarriesMetricsDelta) {
  StorageEnv env(512 * kPageSize);
  const JoinResult result =
      RunFacade(&env, BaseSpec(JoinMethod::kPbsm), nullptr);
  // The delta must reflect this join's own activity, not process history.
  EXPECT_GT(result.metrics.counter("storage.bufferpool.hits") +
                result.metrics.counter("storage.bufferpool.misses"),
            0u);
  EXPECT_EQ(result.metrics.counter("join.results"), result.num_results);
  EXPECT_EQ(result.metrics.counter("join.refine.true_positives"),
            result.num_results);
  EXPECT_EQ(result.metrics.counter("join.runs.pbsm"), 1u);
}

TEST_F(SpatialJoinApiTest, AdaptiveRefineReportsCellFilterMetrics) {
  StorageEnv env(512 * kPageSize);
  JoinSpec spec = BaseSpec(JoinMethod::kPbsm);
  spec.options.refine = {.mode = RefineMode::kAdaptive};
  PairSet adaptive_pairs;
  const JoinResult result = RunFacade(&env, spec, &adaptive_pairs);

  StorageEnv exact_env(512 * kPageSize);
  PairSet exact_pairs;
  RunFacade(&exact_env, BaseSpec(JoinMethod::kPbsm), &exact_pairs);
  EXPECT_EQ(adaptive_pairs, exact_pairs);

  // Every candidate is either settled by the cell filter or fell back.
  const uint64_t skipped = result.metrics.counter("refinement.skipped_exact");
  const uint64_t fallbacks =
      result.metrics.counter("refinement.exact_fallbacks");
  EXPECT_EQ(skipped, result.metrics.counter("refinement.true_hits") +
                         result.metrics.counter("refinement.cell_rejects") +
                         result.metrics.counter("refinement.approx_accepted"));
  EXPECT_GT(skipped + fallbacks, 0u);
}

TEST_F(SpatialJoinApiTest, TraceSpansCoverJoinPhases) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  StorageEnv env(512 * kPageSize);
  RunFacade(&env, BaseSpec(JoinMethod::kPbsm), nullptr);
  bool found_join = false, found_refinement = false;
  for (const SpanRecord& span : tracer.FinishedSpans()) {
    if (span.name == "join/pbsm") found_join = true;
    if (span.name == "refinement") found_refinement = true;
  }
  EXPECT_TRUE(found_join);
  EXPECT_TRUE(found_refinement);
}

TEST_F(SpatialJoinApiTest, AdaptiveRefineEmitsSubSpans) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  StorageEnv env(512 * kPageSize);
  JoinSpec spec = BaseSpec(JoinMethod::kPbsm);
  spec.options.refine = {.mode = RefineMode::kAdaptive};
  RunFacade(&env, spec, nullptr);
  bool found_cell_filter = false;
  for (const SpanRecord& span : tracer.FinishedSpans()) {
    if (span.name == "refine/cell_filter") found_cell_filter = true;
  }
  EXPECT_TRUE(found_cell_filter);
}

TEST_F(SpatialJoinApiTest, CancelledAdaptiveJoinStillFlushesRefineSubSpans) {
  // Regression: a Canceller abort mid-refinement returns from inside the
  // cell-filter loop while its sub-span is still open; the executor must
  // flush open spans before surfacing kCancelled, or the trace loses the
  // whole refine subtree exactly on the runs one wants to debug.
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  StorageEnv env(512 * kPageSize);
  auto r = LoadRelation(env.pool(), nullptr, "road", roads_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto s = LoadRelation(env.pool(), nullptr, "hydro", hydro_);
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  Canceller canceller;
  JoinSpec spec = BaseSpec(JoinMethod::kPbsm);
  spec.options.refine = {.mode = RefineMode::kAdaptive};
  spec.options.cancel = &canceller;
  // Cancel from the sink: the first emitted pair proves the join is inside
  // the refinement loop, so the abort lands mid-cell-filter.
  spec.sink = [&canceller](Oid, Oid) { canceller.Cancel(); };
  const auto result = SpatialJoin(env.pool(), r->AsInput(), s->AsInput(), spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  bool found_cell_filter = false;
  for (const SpanRecord& span : tracer.FinishedSpans()) {
    if (span.name == "refine/cell_filter") found_cell_filter = true;
  }
  EXPECT_TRUE(found_cell_filter);
}

TEST_F(SpatialJoinApiTest, PreexistingIndexIsUsed) {
  StorageEnv env(512 * kPageSize);
  auto r = LoadRelation(env.pool(), nullptr, "road", roads_);
  ASSERT_TRUE(r.ok());
  auto s = LoadRelation(env.pool(), nullptr, "hydro", hydro_);
  ASSERT_TRUE(s.ok());
  JoinSpec spec = BaseSpec(JoinMethod::kInl);
  PBSM_ASSERT_OK_AND_ASSIGN(
      RStarTree index,
      BuildIndexByBulkLoad(env.pool(), r->AsInput(), "pre_r.rtree",
                           spec.options.index_fill_factor));
  spec.r_index = &index;
  PairSet with_index;
  spec.sink = Collect(&with_index);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinResult result,
      SpatialJoin(env.pool(), r->AsInput(), s->AsInput(), spec));
  EXPECT_EQ(with_index.size(), result.num_results);
  // No "build index" phase when the index is supplied.
  for (const auto& [name, cost] : result.breakdown.phases) {
    EXPECT_EQ(name.find("build index"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace pbsm
