#include "core/spatial_sharding.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/selectivity.h"
#include "geom/rect.h"

namespace pbsm {
namespace {

TEST(ShardLayoutTest, DefaultIsSingleShard) {
  ShardLayout layout;
  EXPECT_EQ(layout.num_shards(), 1u);
  EXPECT_EQ(layout.OwnerOfX(-1e18), 0u);
  EXPECT_EQ(layout.OwnerOfX(1e18), 0u);
  const auto range = layout.Overlapping(Rect(0, 0, 1, 1));
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 0u);
}

TEST(ShardLayoutTest, OwnerOfXHalfOpenStrips) {
  ShardLayout layout(Rect(0, 0, 100, 100), {25.0, 50.0, 75.0});
  EXPECT_EQ(layout.num_shards(), 4u);
  EXPECT_EQ(layout.OwnerOfX(0.0), 0u);
  EXPECT_EQ(layout.OwnerOfX(24.999), 0u);
  EXPECT_EQ(layout.OwnerOfX(25.0), 1u);  // Boundary belongs to the right.
  EXPECT_EQ(layout.OwnerOfX(50.0), 2u);
  EXPECT_EQ(layout.OwnerOfX(75.0), 3u);
  // Outer strips are unbounded for routing.
  EXPECT_EQ(layout.OwnerOfX(-10.0), 0u);
  EXPECT_EQ(layout.OwnerOfX(1000.0), 3u);
}

TEST(ShardLayoutTest, OverlappingCoversReplicationRange) {
  ShardLayout layout(Rect(0, 0, 100, 100), {25.0, 50.0, 75.0});
  auto range = layout.Overlapping(Rect(10, 0, 20, 1));
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 0u);
  range = layout.Overlapping(Rect(20, 0, 60, 1));  // Straddles two cuts.
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 2u);
  range = layout.Overlapping(Rect(-5, 0, 105, 1));
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, 3u);
}

TEST(ShardLayoutTest, ExtentsTileTheUniverse) {
  const Rect universe(0, 0, 100, 40);
  ShardLayout layout(universe, {30.0, 60.0});
  const Rect e0 = layout.Extent(0);
  const Rect e1 = layout.Extent(1);
  const Rect e2 = layout.Extent(2);
  EXPECT_DOUBLE_EQ(e0.xlo, 0.0);
  EXPECT_DOUBLE_EQ(e0.xhi, 30.0);
  EXPECT_DOUBLE_EQ(e1.xlo, 30.0);
  EXPECT_DOUBLE_EQ(e1.xhi, 60.0);
  EXPECT_DOUBLE_EQ(e2.xlo, 60.0);
  EXPECT_DOUBLE_EQ(e2.xhi, 100.0);
  EXPECT_DOUBLE_EQ(e1.ylo, 0.0);
  EXPECT_DOUBLE_EQ(e1.yhi, 40.0);
}

// The load-bearing invariant behind duplicate-free scatter-gather: for any
// intersecting pair, the owner strip overlaps BOTH rectangles (so both are
// replicated there and the pair is found), and ownership is a function, so
// exactly one strip emits it.
TEST(ShardLayoutTest, PairOwnerIsUniqueAndOverlapsBothSides) {
  ShardLayout layout(Rect(0, 0, 100, 100), {20.0, 45.0, 80.0});
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> pos(-5.0, 100.0);
  std::uniform_real_distribution<double> len(0.0, 30.0);
  for (int i = 0; i < 2000; ++i) {
    const double rx = pos(rng), sx = pos(rng);
    const Rect r(rx, 0, rx + len(rng), 1);
    const Rect s(sx, 0, sx + len(rng), 1);
    if (!r.Intersects(s)) continue;
    const uint32_t owner = layout.PairOwner(r, s);
    const auto rr = layout.Overlapping(r);
    const auto sr = layout.Overlapping(s);
    EXPECT_GE(owner, rr.first);
    EXPECT_LE(owner, rr.last);
    EXPECT_GE(owner, sr.first);
    EXPECT_LE(owner, sr.last);
  }
}

// Windowed ownership must stay inside the window's dispatch set even when
// the unclamped reference corner falls in a strip left of the window.
TEST(ShardLayoutTest, WindowedPairOwnerStaysInDispatchSet) {
  ShardLayout layout(Rect(0, 0, 100, 100), {25.0, 50.0, 75.0});
  // Both rects start in strip 0 but reach into strip 2; the window only
  // covers strips 2..3.
  const Rect r(10, 0, 60, 1);
  const Rect s(12, 0, 65, 1);
  const Rect window(55, 0, 90, 1);
  EXPECT_EQ(layout.PairOwner(r, s), 0u);  // Unwindowed owner: strip 0.
  const uint32_t owner = layout.PairOwner(r, s, window);
  const auto dispatch = layout.Overlapping(window);
  EXPECT_GE(owner, dispatch.first);
  EXPECT_LE(owner, dispatch.last);
  EXPECT_EQ(owner, 2u);  // Clamped corner max(10, 12, 55) = 55.
}

TEST(ShardLayoutTest, UniformLayoutSplitsEqually) {
  const ShardLayout layout = UniformShardLayout(Rect(0, 0, 100, 10), 4);
  ASSERT_EQ(layout.num_shards(), 4u);
  ASSERT_EQ(layout.boundaries().size(), 3u);
  EXPECT_DOUBLE_EQ(layout.boundaries()[0], 25.0);
  EXPECT_DOUBLE_EQ(layout.boundaries()[1], 50.0);
  EXPECT_DOUBLE_EQ(layout.boundaries()[2], 75.0);
}

TEST(ComputeShardLayoutTest, BalancesSkewedLoad) {
  // 90% of the mass in the left tenth of the universe: balanced cuts must
  // land far left of the uniform ones.
  const Rect universe(0, 0, 100, 100);
  SpatialHistogram hist(universe, 64, 8);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> left(0.0, 10.0);
  std::uniform_real_distribution<double> right(10.0, 100.0);
  std::uniform_real_distribution<double> y(0.0, 99.0);
  for (int i = 0; i < 9000; ++i) {
    const double x = left(rng), yy = y(rng);
    hist.Add(Rect(x, yy, x + 0.5, yy + 0.5));
  }
  for (int i = 0; i < 1000; ++i) {
    const double x = right(rng), yy = y(rng);
    hist.Add(Rect(x, yy, x + 0.5, yy + 0.5));
  }
  const ShardLayout layout = ComputeShardLayout(hist, 4);
  ASSERT_EQ(layout.num_shards(), 4u);
  // First three quarters of the load sit inside [0, 10): every cut < 15.
  EXPECT_LT(layout.boundaries()[0], 15.0);
  EXPECT_LT(layout.boundaries()[1], 15.0);
  EXPECT_LT(layout.boundaries()[2], 15.0);
  // Cuts are strictly increasing even under this skew.
  EXPECT_LT(layout.boundaries()[0], layout.boundaries()[1]);
  EXPECT_LT(layout.boundaries()[1], layout.boundaries()[2]);
}

TEST(ComputeShardLayoutTest, UniformDataGivesRoughlyUniformCuts) {
  const Rect universe(0, 0, 100, 100);
  SpatialHistogram hist(universe, 64, 8);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> pos(0.0, 99.0);
  for (int i = 0; i < 10000; ++i) {
    const double x = pos(rng), y = pos(rng);
    hist.Add(Rect(x, y, x + 0.5, y + 0.5));
  }
  const ShardLayout layout = ComputeShardLayout(hist, 4);
  ASSERT_EQ(layout.boundaries().size(), 3u);
  EXPECT_NEAR(layout.boundaries()[0], 25.0, 5.0);
  EXPECT_NEAR(layout.boundaries()[1], 50.0, 5.0);
  EXPECT_NEAR(layout.boundaries()[2], 75.0, 5.0);
}

TEST(ComputeShardLayoutTest, EmptyHistogramFallsBackToSingleStrip) {
  SpatialHistogram hist(Rect(0, 0, 10, 10), 8, 8);
  const ShardLayout layout = ComputeShardLayout(hist, 4);
  EXPECT_GE(layout.num_shards(), 1u);
  // Whatever the fallback produced, routing must still cover everything.
  const auto range = layout.Overlapping(Rect(-5, -5, 15, 15));
  EXPECT_EQ(range.first, 0u);
  EXPECT_EQ(range.last, layout.num_shards() - 1);
}

TEST(ColumnLoadsTest, WideObjectsWeighMoreThanPoints) {
  const Rect universe(0, 0, 100, 100);
  SpatialHistogram narrow(universe, 10, 10);
  SpatialHistogram wide(universe, 10, 10);
  for (int i = 0; i < 100; ++i) {
    narrow.Add(Rect(50, 50, 50.1, 50.1));
    wide.Add(Rect(20, 50, 80, 50.1));  // Spans 6 columns.
  }
  const std::vector<double> n_loads = narrow.ColumnLoads();
  const std::vector<double> w_loads = wide.ColumnLoads();
  double n_total = 0, w_total = 0;
  for (double v : n_loads) n_total += v;
  for (double v : w_loads) w_total += v;
  // Replication-aware: the wide set's total load is several times larger
  // even though the object count is identical.
  EXPECT_GT(w_total, 3.0 * n_total);
}

}  // namespace
}  // namespace pbsm
