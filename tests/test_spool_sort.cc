#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "storage/external_sort.h"
#include "storage/spool_file.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(SpoolFileTest, AppendReadRoundTrip) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(SpoolFile spool,
                            SpoolFile::Create(env.pool(), sizeof(uint64_t)));
  for (uint64_t i = 0; i < 5000; ++i) {
    PBSM_ASSERT_OK(spool.Append(&i));
  }
  EXPECT_EQ(spool.num_records(), 5000u);
  EXPECT_GT(spool.num_pages(), 1u);

  SpoolFile::Reader reader = spool.NewReader();
  uint64_t v = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has, reader.Next(&v));
    ASSERT_TRUE(has);
    EXPECT_EQ(v, i);
  }
  PBSM_ASSERT_OK_AND_ASSIGN(const bool has, reader.Next(&v));
  EXPECT_FALSE(has);
}

TEST(SpoolFileTest, ReaderResetRestarts) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(SpoolFile spool,
                            SpoolFile::Create(env.pool(), sizeof(int)));
  for (int i = 0; i < 10; ++i) PBSM_ASSERT_OK(spool.Append(&i));
  SpoolFile::Reader reader = spool.NewReader();
  int v;
  PBSM_ASSERT_OK_AND_ASSIGN(bool has, reader.Next(&v));
  ASSERT_TRUE(has);
  reader.Reset();
  PBSM_ASSERT_OK_AND_ASSIGN(has, reader.Next(&v));
  ASSERT_TRUE(has);
  EXPECT_EQ(v, 0);
}

TEST(SpoolFileTest, MultipleConcurrentReaders) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(SpoolFile spool,
                            SpoolFile::Create(env.pool(), sizeof(int)));
  for (int i = 0; i < 100; ++i) PBSM_ASSERT_OK(spool.Append(&i));
  SpoolFile::Reader r1 = spool.NewReader();
  SpoolFile::Reader r2 = spool.NewReader();
  int a, b;
  for (int i = 0; i < 100; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has1, r1.Next(&a));
    ASSERT_TRUE(has1);
    if (i % 2 == 0) {
      PBSM_ASSERT_OK_AND_ASSIGN(const bool has2, r2.Next(&b));
      ASSERT_TRUE(has2);
      EXPECT_EQ(b, i / 2);
    }
  }
}

TEST(SpoolFileTest, DropDeletesFile) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(SpoolFile spool,
                            SpoolFile::Create(env.pool(), 8));
  const uint64_t x = 1;
  PBSM_ASSERT_OK(spool.Append(&x));
  const FileId file = spool.file();
  PBSM_ASSERT_OK(spool.Drop());
  EXPECT_FALSE(env.disk()->NumPages(file).ok());
  // Double drop is a no-op.
  PBSM_ASSERT_OK(spool.Drop());
}

struct Record {
  uint64_t key;
  uint64_t payload;
};
struct RecordLess {
  bool operator()(const Record& a, const Record& b) const {
    return a.key < b.key;
  }
};

class ExternalSortTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ExternalSortTest, MatchesStdSort) {
  const auto [n, budget] = GetParam();
  StorageEnv env(64 * kPageSize);
  ExternalSorter<Record, RecordLess> sorter(env.pool(), budget, RecordLess{});

  Rng rng(n * 31 + budget);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < n; ++i) {
    const Record rec{rng.Uniform(n * 2 + 1), i};
    keys.push_back(rec.key);
    PBSM_ASSERT_OK(sorter.Add(rec));
  }
  std::sort(keys.begin(), keys.end());

  PBSM_ASSERT_OK(sorter.Finish());
  EXPECT_EQ(sorter.num_records(), n);
  Record rec;
  for (size_t i = 0; i < n; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has, sorter.Next(&rec));
    ASSERT_TRUE(has) << "at " << i;
    EXPECT_EQ(rec.key, keys[i]);
  }
  PBSM_ASSERT_OK_AND_ASSIGN(const bool has, sorter.Next(&rec));
  EXPECT_FALSE(has);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBudgets, ExternalSortTest,
    ::testing::Combine(
        // Record counts: empty, tiny, spilling sizes.
        ::testing::Values(size_t{0}, size_t{1}, size_t{100}, size_t{5000},
                          size_t{50000}),
        // Budgets: force in-memory, few runs, many runs.
        ::testing::Values(size_t{1} << 10, size_t{16} << 10,
                          size_t{1} << 22)));

TEST(ExternalSortTest, SpillsWhenBudgetExceeded) {
  StorageEnv env(64 * kPageSize);
  ExternalSorter<Record, RecordLess> sorter(env.pool(), 1 << 10,
                                            RecordLess{});
  for (uint64_t i = 0; i < 10000; ++i) {
    PBSM_ASSERT_OK(sorter.Add(Record{10000 - i, i}));
  }
  PBSM_ASSERT_OK(sorter.Finish());
  EXPECT_GT(sorter.num_runs(), 1u);
  Record rec;
  uint64_t prev = 0;
  uint64_t count = 0;
  while (true) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has, sorter.Next(&rec));
    if (!has) break;
    EXPECT_GE(rec.key, prev);
    prev = rec.key;
    ++count;
  }
  EXPECT_EQ(count, 10000u);
}

TEST(ExternalSortTest, StaysInMemoryUnderBudget) {
  StorageEnv env;
  ExternalSorter<Record, RecordLess> sorter(env.pool(), 1 << 20,
                                            RecordLess{});
  for (uint64_t i = 0; i < 100; ++i) {
    PBSM_ASSERT_OK(sorter.Add(Record{100 - i, i}));
  }
  PBSM_ASSERT_OK(sorter.Finish());
  EXPECT_EQ(sorter.num_runs(), 0u);
}

}  // namespace
}  // namespace pbsm
