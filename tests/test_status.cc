#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace pbsm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x, bool* reached_end) {
  PBSM_RETURN_IF_ERROR(FailIfNegative(x));
  *reached_end = true;
  return Status::OK();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_FALSE(UseReturnIfError(-1, &reached).ok());
  EXPECT_FALSE(reached);

  bool reached_ok = false;
  EXPECT_TRUE(UseReturnIfError(1, &reached_ok).ok());
  EXPECT_TRUE(reached_ok);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  PBSM_ASSIGN_OR_RETURN(const int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnBindsValue) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(MacrosTest, AssignOrReturnPropagatesError) {
  int out = 0;
  const Status s = UseAssignOrReturn(9, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(out, 0);
}

}  // namespace
}  // namespace pbsm
