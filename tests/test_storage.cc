#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(DiskManagerTest, CreateWriteReadRoundTrip) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file,
                            env.disk()->CreateFile("data"));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t p0, env.disk()->AllocatePage(file));
  EXPECT_EQ(p0, 0u);

  char out[kPageSize];
  std::memset(out, 0xAB, sizeof(out));
  PBSM_ASSERT_OK(env.disk()->WritePage(PageId{file, 0}, out));
  char in[kPageSize] = {};
  PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, 0}, in));
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(DiskManagerTest, ReadBeyondEndFails) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  char buf[kPageSize];
  const Status s = env.disk()->ReadPage(PageId{file, 0}, buf);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(DiskManagerTest, UnknownFileFails) {
  StorageEnv env;
  char buf[kPageSize];
  EXPECT_EQ(env.disk()->ReadPage(PageId{999, 0}, buf).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(env.disk()->DeleteFile(999).code(), StatusCode::kNotFound);
}

TEST(DiskManagerTest, SequentialVsRandomClassification) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  for (int i = 0; i < 10; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t pn, env.disk()->AllocatePage(file));
    (void)pn;
  }
  char buf[kPageSize] = {};
  env.disk()->ResetStats();
  // Forward scan: first read random, rest sequential.
  for (uint32_t p = 0; p < 10; ++p) {
    PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, p}, buf));
  }
  EXPECT_EQ(env.disk()->stats().reads, 10u);
  EXPECT_EQ(env.disk()->stats().sequential_reads, 9u);

  env.disk()->ResetStats();
  // Backward scan: all random.
  for (uint32_t p = 10; p-- > 0;) {
    PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, p}, buf));
  }
  EXPECT_EQ(env.disk()->stats().sequential_reads, 0u);
}

TEST(DiskManagerTest, ModeledTimeFollowsDiskModel) {
  DiskModel model;
  model.seek_ms = 10.0;
  model.transfer_mb_per_s = 8.0;
  StorageEnv env(1 << 20, model);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t pn, env.disk()->AllocatePage(file));
  (void)pn;
  char buf[kPageSize] = {};
  env.disk()->ResetStats();
  PBSM_ASSERT_OK(env.disk()->WritePage(PageId{file, 0}, buf));
  const double expected =
      0.010 + static_cast<double>(kPageSize) / (8.0 * 1024 * 1024);
  EXPECT_NEAR(env.disk()->stats().modeled_seconds, expected, 1e-9);
  // A sequential access costs transfer only.
  EXPECT_NEAR(model.PageCost(/*sequential=*/true),
              static_cast<double>(kPageSize) / (8.0 * 1024 * 1024), 1e-12);
}

TEST(DiskManagerTest, DeleteFileRemovesIt) {
  StorageEnv env;
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("gone"));
  PBSM_ASSERT_OK(env.disk()->DeleteFile(file));
  char buf[kPageSize];
  EXPECT_FALSE(env.disk()->ReadPage(PageId{file, 0}, buf).ok());
}

TEST(BufferPoolTest, CachesPages) {
  StorageEnv env(16 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
    std::memset(page.mutable_data(), 0x5A, kPageSize);
  }
  env.disk()->ResetStats();
  for (int i = 0; i < 5; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page,
                              env.pool()->FetchPage(PageId{file, 0}));
    EXPECT_EQ(page.data()[100], 0x5A);
  }
  // All hits: no physical reads.
  EXPECT_EQ(env.disk()->stats().reads, 0u);
  EXPECT_GE(env.pool()->hit_count(), 5u);
}

TEST(BufferPoolTest, EvictsAndWritesBackDirtyPages) {
  StorageEnv env(4 * kPageSize);  // Tiny pool: 4 frames.
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  for (int i = 0; i < 10; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
    page.mutable_data()[0] = static_cast<char>(i);
  }
  // Re-read all pages; evicted dirty pages must have been written back.
  for (uint32_t p = 0; p < 10; ++p) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        PageHandle page, env.pool()->FetchPage(PageId{file, p}));
    EXPECT_EQ(page.data()[0], static_cast<char>(p));
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  StorageEnv env(2 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle a, env.pool()->NewPage(file));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle b, env.pool()->NewPage(file));
  auto c = env.pool()->NewPage(file);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  // Releasing a pin unblocks allocation.
  a.Release();
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle d, env.pool()->NewPage(file));
  (void)b;
  (void)d;
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  StorageEnv env(8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
    std::memset(page.mutable_data(), 0x77, kPageSize);
  }
  PBSM_ASSERT_OK(env.pool()->FlushAll());
  // Read through the disk manager directly, bypassing the pool.
  char buf[kPageSize];
  PBSM_ASSERT_OK(env.disk()->ReadPage(PageId{file, 0}, buf));
  EXPECT_EQ(buf[0], 0x77);
}

TEST(BufferPoolTest, DropFileDiscardsFrames) {
  StorageEnv env(8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  {
    PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
    (void)page;
  }
  PBSM_ASSERT_OK(env.pool()->DropFile(file));
  EXPECT_FALSE(env.pool()->FetchPage(PageId{file, 0}).ok());
}

TEST(BufferPoolTest, DropFileWithPinnedPageFails) {
  StorageEnv env(8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
  EXPECT_EQ(env.pool()->DropFile(file).code(),
            StatusCode::kFailedPrecondition);
}


TEST(BufferPoolTest, EvictionBatchFlushesSortedDirtyPages) {
  // SHORE behaviour (paper S4.6): when an eviction must write a dirty
  // page, all dirty unpinned pages go out together in sorted order, making
  // most of the writes sequential even if the pages were dirtied randomly.
  StorageEnv env(8 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(const FileId file, env.disk()->CreateFile("f"));
  // Dirty all 8 frames in a scrambled order.
  const int order[8] = {5, 2, 7, 0, 3, 6, 1, 4};
  for (int i = 0; i < 8; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const uint32_t pn,
                              env.disk()->AllocatePage(file));
    (void)pn;
  }
  for (const int p : order) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        PageHandle page,
        env.pool()->FetchPage(PageId{file, static_cast<uint32_t>(p)}));
    page.mutable_data()[0] = static_cast<char>(p);
  }
  env.disk()->ResetStats();
  // Trigger one eviction: the batch flush should write all 8 dirty pages,
  // 7 of them classified sequential (pages 0..7 in order).
  PBSM_ASSERT_OK_AND_ASSIGN(PageHandle page, env.pool()->NewPage(file));
  (void)page;
  const IoStats& stats = env.disk()->stats();
  EXPECT_EQ(stats.writes, 8u);
  EXPECT_GE(stats.sequential_writes, 7u);
}

TEST(BufferPoolTest, CursorSurvivesEvictionPressure) {
  // A heap cursor pins one page at a time; concurrent traffic that evicts
  // everything else must not disturb it.
  StorageEnv env(4 * kPageSize);
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile heap, HeapFile::Create(env.pool(), "h"));
  const std::string record(2000, 'r');
  for (int i = 0; i < 40; ++i) {
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid oid, heap.Append(record));
    (void)oid;
  }
  PBSM_ASSERT_OK_AND_ASSIGN(HeapFile other,
                            HeapFile::Create(env.pool(), "noise"));
  HeapFile::Cursor cursor = heap.NewCursor();
  Oid oid;
  std::string out;
  int count = 0;
  while (true) {
    PBSM_ASSERT_OK_AND_ASSIGN(const bool has, cursor.Next(&oid, &out));
    if (!has) break;
    EXPECT_EQ(out.size(), record.size());
    ++count;
    // Interleave unrelated traffic that churns the pool.
    PBSM_ASSERT_OK_AND_ASSIGN(const Oid noise, other.Append("x"));
    (void)noise;
  }
  EXPECT_EQ(count, 40);
}

TEST(BufferPoolTest, PoolRoundsDownToWholePages) {
  StorageEnv env(3 * kPageSize + 100);
  EXPECT_EQ(env.pool()->capacity_pages(), 3u);
  StorageEnv tiny(10);
  EXPECT_EQ(tiny.pool()->capacity_pages(), 1u);  // Minimum one frame.
}

}  // namespace
}  // namespace pbsm
