// Differential tests for the vectorized filter kernels: the scalar batch
// kernel, the AVX2 batch kernel, and the legacy per-pair emitter wrapper
// must produce bit-identical pair sets on every algorithm and input shape —
// including the shapes that stress SIMD lane handling (sizes straddling the
// 4-lane width and the pad granule), closed-boundary touches, zero-area
// MBRs, duplicate xlo keys, and pair counts that overflow the batch buffer.

#include "core/sweep_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/plane_sweep_join.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// Scoped PBSM_SIMD override (restores the prior value on destruction).
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* prev = std::getenv("PBSM_SIMD");
    if (prev != nullptr) saved_ = prev;
    had_prev_ = prev != nullptr;
    if (value != nullptr) {
      setenv("PBSM_SIMD", value, /*overwrite=*/1);
    } else {
      unsetenv("PBSM_SIMD");
    }
  }
  ~ScopedSimdEnv() {
    if (had_prev_) {
      setenv("PBSM_SIMD", saved_.c_str(), 1);
    } else {
      unsetenv("PBSM_SIMD");
    }
  }

 private:
  std::string saved_;
  bool had_prev_ = false;
};

PairSet RunBatch(std::vector<KeyPointer> r, std::vector<KeyPointer> s,
                 SweepAlgorithm algo, SimdMode simd,
                 InputOrder order = InputOrder::kUnsorted) {
  std::vector<OidPair> out;
  const uint64_t n =
      PlaneSweepJoinBatch(&r, &s, VectorBatchSink{&out}, algo, simd, order);
  EXPECT_EQ(n, out.size());
  PairSet set;
  for (const OidPair& p : out) set.emplace(p.r, p.s);
  // Each candidate is emitted exactly once per sweep.
  EXPECT_EQ(set.size(), out.size());
  return set;
}

PairSet RunLegacy(std::vector<KeyPointer> r, std::vector<KeyPointer> s,
                  SweepAlgorithm algo) {
  PairSet out;
  PlaneSweepJoin(
      &r, &s, [&](uint64_t a, uint64_t b) { out.emplace(a, b); }, algo);
  return out;
}

std::vector<KeyPointer> RandomRects(Rng* rng, size_t n, double extent,
                                    double max_size, uint64_t oid_base) {
  std::vector<KeyPointer> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->UniformDouble(0, extent);
    const double y = rng->UniformDouble(0, extent);
    out.push_back(KeyPointer{Rect(x, y, x + rng->NextDouble() * max_size,
                                  y + rng->NextDouble() * max_size),
                             oid_base + i});
  }
  return out;
}

constexpr SweepAlgorithm kAllAlgorithms[] = {
    SweepAlgorithm::kForwardSweep,
    SweepAlgorithm::kIntervalTreeSweep,
    SweepAlgorithm::kNestedLoops,
};

/// Asserts every (algorithm, kernel) combination agrees with the scalar
/// forward-sweep result and with the legacy wrapper.
void ExpectAllEquivalent(const std::vector<KeyPointer>& r,
                         const std::vector<KeyPointer>& s) {
  const PairSet expected =
      RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar);
  for (const SweepAlgorithm algo : kAllAlgorithms) {
    EXPECT_EQ(RunBatch(r, s, algo, SimdMode::kScalar), expected)
        << "scalar, algo " << static_cast<int>(algo);
    EXPECT_EQ(RunLegacy(r, s, algo), expected)
        << "legacy, algo " << static_cast<int>(algo);
    if (Avx2Supported()) {
      EXPECT_EQ(RunBatch(r, s, algo, SimdMode::kAvx2), expected)
          << "avx2, algo " << static_cast<int>(algo);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

TEST(SweepKernelDispatchTest, ScalarRequestAlwaysScalar) {
  EXPECT_EQ(ResolveKernel(SimdMode::kScalar), KernelKind::kScalar);
}

TEST(SweepKernelDispatchTest, Avx2RequestMatchesCpuSupport) {
  const KernelKind kind = ResolveKernel(SimdMode::kAvx2);
  if (Avx2Supported()) {
    EXPECT_EQ(kind, KernelKind::kAvx2);
  } else {
    EXPECT_EQ(kind, KernelKind::kScalar);
  }
}

TEST(SweepKernelDispatchTest, EnvOverridesAuto) {
  {
    ScopedSimdEnv env("scalar");
    EXPECT_EQ(ResolveKernel(SimdMode::kAuto), KernelKind::kScalar);
  }
  {
    ScopedSimdEnv env("avx2");
    EXPECT_EQ(ResolveKernel(SimdMode::kAuto),
              Avx2Supported() ? KernelKind::kAvx2 : KernelKind::kScalar);
  }
  {
    ScopedSimdEnv env("auto");
    EXPECT_EQ(ResolveKernel(SimdMode::kAuto),
              Avx2Supported() ? KernelKind::kAvx2 : KernelKind::kScalar);
  }
}

TEST(SweepKernelDispatchTest, EnvDoesNotOverrideExplicitRequest) {
  ScopedSimdEnv env("avx2");
  EXPECT_EQ(ResolveKernel(SimdMode::kScalar), KernelKind::kScalar);
}

TEST(SweepKernelDispatchTest, UnsupportedAvx2FallsBackAndCounts) {
  if (Avx2Supported()) GTEST_SKIP() << "AVX2 available; fallback not taken";
  Counter* const fallback = MetricsRegistry::Global().GetCounter(
      "sweep.kernel.fallback_scalar");
  const uint64_t before = fallback->Value();
  EXPECT_EQ(ResolveKernel(SimdMode::kAvx2), KernelKind::kScalar);
  EXPECT_GT(fallback->Value(), before);
}

TEST(SweepKernelDispatchTest, KindNames) {
  EXPECT_EQ(KernelKindName(KernelKind::kScalar), "scalar");
  EXPECT_EQ(KernelKindName(KernelKind::kAvx2), "avx2");
}

// ---------------------------------------------------------------------------
// Differential: sizes straddling SIMD widths.
// ---------------------------------------------------------------------------

class SweepKernelSizeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(SweepKernelSizeTest, AllKernelsAgree) {
  const auto [nr, ns] = GetParam();
  Rng rng(nr * 1000 + ns + 42);
  const auto r = RandomRects(&rng, nr, 50.0, 10.0, 0);
  const auto s = RandomRects(&rng, ns, 50.0, 10.0, 1 << 20);
  ExpectAllEquivalent(r, s);
}

INSTANTIATE_TEST_SUITE_P(
    LaneStraddlingSizes, SweepKernelSizeTest,
    ::testing::Values(std::pair<size_t, size_t>{0, 0},
                      std::pair<size_t, size_t>{0, 5},
                      std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{3, 4},
                      std::pair<size_t, size_t>{4, 4},
                      std::pair<size_t, size_t>{5, 3},
                      std::pair<size_t, size_t>{63, 64},
                      std::pair<size_t, size_t>{64, 65},
                      std::pair<size_t, size_t>{65, 63},
                      std::pair<size_t, size_t>{1000, 1000}));

// ---------------------------------------------------------------------------
// Differential: adversarial geometry.
// ---------------------------------------------------------------------------

TEST(SweepKernelGeometryTest, TouchingBoundariesMatch) {
  // Closed-interval semantics: rectangles sharing only an edge or corner
  // intersect. The x-touch also sits exactly at the sweep's termination
  // condition (xlo == head_xhi must still be scanned).
  std::vector<KeyPointer> r = {{Rect(0, 0, 1, 1), 1},
                               {Rect(2, 0, 3, 1), 2}};
  std::vector<KeyPointer> s = {
      {Rect(1, 1, 2, 2), 10},   // Corner-touch r1 at (1,1) and r2 at (2,1).
      {Rect(3, 0, 4, 1), 20},   // Edge-touch r2.
      {Rect(1, 0, 2, 1), 30}};  // Edge-touch both.
  const PairSet expected = {{1, 10}, {2, 10}, {2, 20}, {1, 30}, {2, 30}};
  EXPECT_EQ(RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar),
            expected);
  ExpectAllEquivalent(r, s);
}

TEST(SweepKernelGeometryTest, ZeroAreaRects) {
  std::vector<KeyPointer> r = {{Rect(1, 1, 1, 1), 1},    // Point.
                               {Rect(0, 2, 4, 2), 2}};   // Horizontal line.
  std::vector<KeyPointer> s = {{Rect(1, 1, 1, 1), 10},   // Same point.
                               {Rect(2, 0, 2, 4), 20},   // Vertical line.
                               {Rect(3, 3, 3, 3), 30}};  // Isolated point.
  const PairSet expected = {{1, 10}, {2, 20}};
  EXPECT_EQ(RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar),
            expected);
  ExpectAllEquivalent(r, s);
}

TEST(SweepKernelGeometryTest, DuplicateXloKeys) {
  // Many rectangles sharing one xlo: sort order among them is unspecified,
  // but the emitted pair *set* must not depend on it.
  std::vector<KeyPointer> r, s;
  for (uint64_t i = 0; i < 20; ++i) {
    r.push_back({Rect(5.0, static_cast<double>(i), 6.0, i + 0.5), i});
    s.push_back({Rect(5.0, i + 0.25, 7.0, i + 0.75), 100 + i});
  }
  ExpectAllEquivalent(r, s);
}

TEST(SweepKernelGeometryTest, RandomClusteredWorkloads) {
  for (const uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    auto r = RandomRects(&rng, 300, 20.0, 8.0, 0);
    auto s = RandomRects(&rng, 300, 20.0, 8.0, 1 << 20);
    ExpectAllEquivalent(r, s);
  }
}

// ---------------------------------------------------------------------------
// Buffer management.
// ---------------------------------------------------------------------------

TEST(SweepKernelBufferTest, PairCountBeyondBufferCapacity) {
  // 80 x 80 identical rectangles = 6400 pairs > kPairBufferCap (4096), so
  // the sweep must flush mid-run without losing or duplicating pairs.
  std::vector<KeyPointer> r, s;
  for (uint64_t i = 0; i < 80; ++i) {
    r.push_back({Rect(0, 0, 1, 1), i});
    s.push_back({Rect(0, 0, 1, 1), 1000 + i});
  }
  Counter* const flushes =
      MetricsRegistry::Global().GetCounter("sweep.buffer.flushes");
  const uint64_t flushes_before = flushes->Value();
  const PairSet scalar =
      RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar);
  EXPECT_EQ(scalar.size(), 6400u);
  EXPECT_GE(flushes->Value(), flushes_before + 2);  // >1 flush per sweep.
  ExpectAllEquivalent(r, s);
}

TEST(SweepKernelBufferTest, KernelMetricsAdvance) {
  Rng rng(77);
  auto r = RandomRects(&rng, 500, 30.0, 5.0, 0);
  auto s = RandomRects(&rng, 500, 30.0, 5.0, 1 << 20);
  Counter* const batches =
      MetricsRegistry::Global().GetCounter("sweep.kernel.batches");
  Counter* const lanes =
      MetricsRegistry::Global().GetCounter("sweep.kernel.simd_lanes_used");
  const uint64_t batches_before = batches->Value();
  const uint64_t lanes_before = lanes->Value();
  RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar);
  EXPECT_GT(batches->Value(), batches_before);
  if (Avx2Supported()) {
    RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kAvx2);
    EXPECT_GT(lanes->Value(), lanes_before);
  }
}

// ---------------------------------------------------------------------------
// Sorted-input fast path.
// ---------------------------------------------------------------------------

TEST(SweepKernelSortedTest, SortedByXloSkipsSortAndMatches) {
  Rng rng(21);
  auto r = RandomRects(&rng, 200, 40.0, 6.0, 0);
  auto s = RandomRects(&rng, 200, 40.0, 6.0, 1 << 20);
  const PairSet expected =
      RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar);
  auto by_xlo = [](const KeyPointer& a, const KeyPointer& b) {
    return a.mbr.xlo < b.mbr.xlo;
  };
  std::sort(r.begin(), r.end(), by_xlo);
  std::sort(s.begin(), s.end(), by_xlo);
  EXPECT_EQ(RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kScalar,
                     InputOrder::kSortedByXlo),
            expected);
  if (Avx2Supported()) {
    EXPECT_EQ(RunBatch(r, s, SweepAlgorithm::kForwardSweep, SimdMode::kAvx2,
                       InputOrder::kSortedByXlo),
              expected);
  }
}

// ---------------------------------------------------------------------------
// Window scan.
// ---------------------------------------------------------------------------

TEST(OverlapScanTest, MatchesNaiveIntersects) {
  Rng rng(31);
  const auto items = RandomRects(&rng, 137, 25.0, 5.0, 0);  // Odd size.
  for (const Rect& query :
       {Rect(5, 5, 15, 15), Rect(0, 0, 25, 25), Rect(24, 24, 30, 30),
        Rect(10, 10, 10, 10), Rect()}) {
    std::vector<uint32_t> expected;
    if (!query.empty()) {
      for (uint32_t i = 0; i < items.size(); ++i) {
        if (items[i].mbr.Intersects(query)) expected.push_back(i);
      }
    }
    for (const KernelKind kind : {KernelKind::kScalar, KernelKind::kAvx2}) {
      if (kind == KernelKind::kAvx2 && !Avx2Supported()) continue;
      std::vector<uint32_t> hits;
      OverlapScan(items.data(), items.size(), query, kind, &hits);
      EXPECT_EQ(hits, expected) << KernelKindName(kind);
    }
  }
}

TEST(OverlapScanTest, EmptyInput) {
  std::vector<uint32_t> hits;
  EXPECT_EQ(OverlapScan(static_cast<const KeyPointer*>(nullptr), 0,
                        Rect(0, 0, 1, 1), KernelKind::kScalar, &hits),
            0u);
  EXPECT_TRUE(hits.empty());
}

// ---------------------------------------------------------------------------
// Scratch reuse.
// ---------------------------------------------------------------------------

TEST(SweepScratchTest, ReservedBytesGaugeTracksScratch) {
  Gauge* const gauge =
      MetricsRegistry::Global().GetGauge("sweep.alloc.reserved_bytes");
  const int64_t before = gauge->Value();
  {
    SweepScratch scratch;
    std::vector<KeyPointer> r = {{Rect(0, 0, 1, 1), 1}};
    std::vector<KeyPointer> s = {{Rect(0, 0, 1, 1), 2}};
    std::vector<OidPair> out;
    PlaneSweepJoinBatch(&r, &s, VectorBatchSink{&out},
                        SweepAlgorithm::kForwardSweep, SimdMode::kScalar,
                        InputOrder::kUnsorted, &scratch);
    EXPECT_GT(gauge->Value(), before);
  }
  // Scratch destruction returns its reservation.
  EXPECT_EQ(gauge->Value(), before);
}

TEST(SweepScratchTest, ThreadLocalScratchIsPerThread) {
  SweepScratch* main_scratch = &SweepScratch::ThreadLocal();
  EXPECT_EQ(main_scratch, &SweepScratch::ThreadLocal());  // Stable.
  SweepScratch* other_scratch = nullptr;
  std::thread t([&] { other_scratch = &SweepScratch::ThreadLocal(); });
  t.join();
  EXPECT_NE(main_scratch, other_scratch);
}

TEST(SweepScratchTest, ReuseAcrossSweepsIsCorrect) {
  // Growing/shrinking inputs through one scratch: stale SoA or event state
  // from a larger earlier sweep must not leak into a smaller later one.
  SweepScratch scratch;
  Rng rng(53);
  for (const size_t n : {500u, 3u, 64u, 1u, 129u}) {
    auto r = RandomRects(&rng, n, 30.0, 6.0, 0);
    auto s = RandomRects(&rng, n, 30.0, 6.0, 1 << 20);
    const PairSet expected = RunBatch(r, s, SweepAlgorithm::kNestedLoops,
                                      SimdMode::kScalar);
    std::vector<OidPair> out;
    PlaneSweepJoinBatch(&r, &s, VectorBatchSink{&out},
                        SweepAlgorithm::kForwardSweep, SimdMode::kAuto,
                        InputOrder::kUnsorted, &scratch);
    PairSet got;
    for (const OidPair& p : out) got.emplace(p.r, p.s);
    EXPECT_EQ(got, expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace pbsm
