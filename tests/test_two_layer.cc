// Two-layer duplicate-free filtering, unit level: corner classification of
// degenerate and multi-tile MBRs, the exactly-once emission guarantee of
// the class-pair mini-joins (the property that lets the join skip the
// merge-dedup phase entirely), and the steady-state zero-allocation
// contract of the partition filter.
//
// This TU replaces the global allocation operators with counting versions
// (toggled by a flag, delegating to malloc/free) so the zero-allocation
// test observes every heap allocation the filter would make. The test
// binary is its own executable (one binary per test source), so the
// replacement affects nothing else.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/key_pointer.h"
#include "core/spatial_partitioner.h"
#include "core/sweep_kernel.h"
#include "core/two_layer_filter.h"
#include "geom/rect.h"

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_alloc_count{0};

void NoteAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) {
  NoteAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAllocAligned(std::size_t size, std::size_t align) {
  NoteAlloc();
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAllocAligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pbsm {
namespace {

// A 4x4 grid of 2x2 tiles over [0,8]^2: num_tiles = 16 resolves to
// nx = ny = 4 exactly, so tile geometry is easy to reason about in the
// classification tests below.
SpatialPartitioner MakeGrid() {
  return SpatialPartitioner(Rect(0, 0, 8, 8), /*num_tiles=*/16,
                            /*num_partitions=*/4, TileMapping::kHash);
}

TileClass ClassOfTile(const std::vector<TileAssignment>& v, uint32_t tile) {
  for (const TileAssignment& ta : v) {
    if (ta.tile == tile) return ta.cls;
  }
  ADD_FAILURE() << "tile " << tile << " missing from classification";
  return TileClass::kA;
}

TEST(TileClassificationTest, ZeroAreaMbrIsSingleClassA) {
  const SpatialPartitioner part = MakeGrid();
  for (const Rect& mbr : {Rect(3, 3, 3, 3),       // Point, tile interior.
                          Rect(3, 2.5, 3, 3.5),   // Vertical segment.
                          Rect(2.5, 3, 3.5, 3)})  // Horizontal segment.
  {
    std::vector<TileAssignment> out;
    part.ClassifyTiles(mbr, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].cls, TileClass::kA);
    EXPECT_EQ(out[0].tile, part.TileFor(mbr.xlo, mbr.ylo));
  }
}

TEST(TileClassificationTest, TileBoundaryAlignedMbrSpansNeighbours) {
  const SpatialPartitioner part = MakeGrid();
  ASSERT_EQ(part.grid_nx(), 4u);
  ASSERT_EQ(part.grid_ny(), 4u);
  // Exactly one tile's closed extent: the xhi/yhi edges lie on the next
  // tiles' half-open boundaries, so the copy spans a 2x2 block with all
  // four classes present.
  std::vector<TileAssignment> out;
  part.ClassifyTiles(Rect(2, 2, 4, 4), &out);
  ASSERT_EQ(out.size(), 4u);
  const uint32_t origin = part.TileFor(2, 2);
  const uint32_t nx = part.grid_nx();
  const uint32_t col = origin % nx;
  const uint32_t row = origin / nx;
  // Rows number from the top: "above" in y is row - 1.
  EXPECT_EQ(ClassOfTile(out, row * nx + col), TileClass::kA);
  EXPECT_EQ(ClassOfTile(out, row * nx + col + 1), TileClass::kB);
  EXPECT_EQ(ClassOfTile(out, (row - 1) * nx + col), TileClass::kC);
  EXPECT_EQ(ClassOfTile(out, (row - 1) * nx + col + 1), TileClass::kD);

  // A point exactly on a shared tile corner stays a single class-A copy in
  // the tile that owns the corner.
  out.clear();
  part.ClassifyTiles(Rect(4, 4, 4, 4), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].cls, TileClass::kA);
  EXPECT_EQ(out[0].tile, part.TileFor(4, 4));
}

TEST(TileClassificationTest, ThreeByThreeSpanHasExpectedClassCounts) {
  const SpatialPartitioner part = MakeGrid();
  std::vector<TileAssignment> out;
  part.ClassifyTiles(Rect(1, 1, 5, 5), &out);  // Spans a 3x3 tile block.
  ASSERT_EQ(out.size(), 9u);
  uint32_t counts[4] = {0, 0, 0, 0};
  for (const TileAssignment& ta : out) {
    ++counts[static_cast<uint32_t>(ta.cls)];
  }
  EXPECT_EQ(counts[0], 1u);  // A: the origin tile, exactly once.
  EXPECT_EQ(counts[1], 2u);  // B: origin row, two columns to the right.
  EXPECT_EQ(counts[2], 2u);  // C: origin column, two rows above.
  EXPECT_EQ(counts[3], 4u);  // D: the remaining 2x2 block.
}

TEST(TileClassificationTest, RandomMbrsHaveOneClassAAndMatchPartitionsFor) {
  // Invariants over arbitrary (including out-of-universe, clamped) MBRs:
  // exactly one class-A copy, it holds the origin corner, and the set of
  // partitions touched agrees with the merge path's PartitionsFor.
  Rng rng(20260808);
  const SpatialPartitioner part(Rect(0, 0, 100, 50), /*num_tiles=*/64,
                                /*num_partitions=*/7, TileMapping::kHash);
  for (int i = 0; i < 500; ++i) {
    const double xlo = rng.UniformDouble(-10, 105);
    const double ylo = rng.UniformDouble(-10, 55);
    const double w = rng.Bernoulli(0.1) ? 0.0 : rng.UniformDouble(0, 40);
    const double h = rng.Bernoulli(0.1) ? 0.0 : rng.UniformDouble(0, 25);
    const Rect mbr(xlo, ylo, xlo + w, ylo + h);

    std::vector<TileAssignment> tiles;
    part.ClassifyTiles(mbr, &tiles);
    ASSERT_FALSE(tiles.empty());
    uint32_t a_count = 0;
    std::vector<uint32_t> via_classify;
    for (const TileAssignment& ta : tiles) {
      if (ta.cls == TileClass::kA) {
        ++a_count;
        // The class-A tile owns the (possibly clamped) origin corner.
        const double cx = std::min(std::max(mbr.xlo, 0.0), 100.0);
        const double cy = std::min(std::max(mbr.ylo, 0.0), 50.0);
        EXPECT_EQ(ta.tile, part.TileFor(cx, cy));
      }
      via_classify.push_back(part.PartitionOfTile(ta.tile));
    }
    EXPECT_EQ(a_count, 1u);
    std::sort(via_classify.begin(), via_classify.end());
    via_classify.erase(
        std::unique(via_classify.begin(), via_classify.end()),
        via_classify.end());
    std::vector<uint32_t> via_partitions;
    part.PartitionsFor(mbr, &via_partitions);
    EXPECT_EQ(via_classify, via_partitions);
  }
}

// ---------------------------------------------------------------------------
// Mini-join driver: exactly-once emission against a brute-force oracle.
// ---------------------------------------------------------------------------

/// Routes `rects` (oid = base + index) into per-partition classed buffers,
/// exactly as the join executors do.
void RouteClassed(const std::vector<Rect>& rects, uint64_t base,
                  const SpatialPartitioner& part,
                  std::vector<std::vector<ClassedKeyPointer>>* bufs) {
  std::vector<TileAssignment> targets;
  for (size_t i = 0; i < rects.size(); ++i) {
    ClassedKeyPointer ckp;
    ckp.mbr = rects[i];
    ckp.oid = base + i;
    targets.clear();
    part.ClassifyTiles(ckp.mbr, &targets);
    for (const TileAssignment& ta : targets) {
      ckp.tile = ta.tile;
      ckp.cls = static_cast<uint32_t>(ta.cls);
      (*bufs)[part.PartitionOfTile(ta.tile)].push_back(ckp);
    }
  }
}

std::vector<Rect> RandomRects(Rng* rng, size_t n, const Rect& universe) {
  std::vector<Rect> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double xlo = rng->UniformDouble(universe.xlo, universe.xhi);
    const double ylo = rng->UniformDouble(universe.ylo, universe.yhi);
    // Mix of degenerate (point/segment), small, and multi-tile extents;
    // occasionally exactly tile-aligned (integral) corners.
    double w = rng->Bernoulli(0.15) ? 0.0 : rng->UniformDouble(0, 12);
    double h = rng->Bernoulli(0.15) ? 0.0 : rng->UniformDouble(0, 12);
    if (rng->Bernoulli(0.2)) {
      w = static_cast<double>(rng->Uniform(13));
      h = static_cast<double>(rng->Uniform(13));
    }
    out.emplace_back(xlo, ylo, xlo + w, ylo + h);
  }
  return out;
}

TEST(TwoLayerFilterTest, EmitsEveryIntersectingPairExactlyOnce) {
  Rng rng(917);
  for (int iter = 0; iter < 10; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    const Rect universe(0, 0, 64, 64);
    const uint32_t num_tiles = 16u << (iter % 4);
    const uint32_t num_partitions = 1 + iter % 5;
    const TileMapping mapping =
        iter % 2 == 0 ? TileMapping::kHash : TileMapping::kRoundRobin;
    const SpatialPartitioner part(universe, num_tiles, num_partitions,
                                  mapping);
    const std::vector<Rect> r = RandomRects(&rng, 120, universe);
    const std::vector<Rect> s = RandomRects(&rng, 90, universe);

    std::vector<std::pair<uint64_t, uint64_t>> expected;
    for (size_t i = 0; i < r.size(); ++i) {
      for (size_t j = 0; j < s.size(); ++j) {
        if (r[i].Intersects(s[j])) expected.emplace_back(i, 1000 + j);
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_FALSE(expected.empty());

    for (const SimdMode simd : {SimdMode::kScalar, SimdMode::kAvx2}) {
      SCOPED_TRACE(simd == SimdMode::kScalar ? "simd=scalar" : "simd=avx2");
      std::vector<std::vector<ClassedKeyPointer>> rp(num_partitions);
      std::vector<std::vector<ClassedKeyPointer>> sp(num_partitions);
      RouteClassed(r, 0, part, &rp);
      RouteClassed(s, 1000, part, &sp);

      std::vector<std::pair<uint64_t, uint64_t>> got;
      auto sink = [&](const OidPair* pairs, size_t n) {
        for (size_t k = 0; k < n; ++k) {
          got.emplace_back(pairs[k].r, pairs[k].s);
        }
      };
      uint64_t emitted = 0;
      for (uint32_t p = 0; p < num_partitions; ++p) {
        emitted += TwoLayerPartitionJoinBatch(&rp[p], &sp[p],
                                              ResolveKernel(simd), sink);
      }
      EXPECT_EQ(emitted, got.size());

      // The multiset itself must be duplicate-free across ALL partitions —
      // this is the exactly-once guarantee that deletes the merge phase,
      // checked before any set-normalization could hide a repeat.
      std::sort(got.begin(), got.end());
      EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
          << "two-layer filter emitted a duplicate candidate pair";
      EXPECT_EQ(got, expected);
    }
  }
}

// ---------------------------------------------------------------------------
// Zero allocations in steady state.
// ---------------------------------------------------------------------------

TEST(TwoLayerFilterTest, SteadyStateFilterPerformsNoHeapAllocations) {
  // Inputs sized to exercise every mini-join (multi-tile spans produce B/C/D
  // copies) with a few thousand candidate emissions.
  Rng rng(4242);
  const Rect universe(0, 0, 64, 64);
  const SpatialPartitioner part(universe, 64, 1, TileMapping::kHash);
  const std::vector<Rect> r = RandomRects(&rng, 400, universe);
  const std::vector<Rect> s = RandomRects(&rng, 300, universe);
  std::vector<std::vector<ClassedKeyPointer>> rp(1), sp(1);
  RouteClassed(r, 0, part, &rp);
  RouteClassed(s, 1000, part, &sp);

  uint64_t sunk = 0;
  auto sink = [&](const OidPair*, size_t n) { sunk += n; };
  const KernelKind kind = ResolveKernel(SimdMode::kAuto);

  // Warm-up run: registers the metric statics and grows the thread-local
  // scratch (SoA columns, transposed run, pair buffer) to this input size.
  std::vector<ClassedKeyPointer> r1 = rp[0], s1 = sp[0];
  const uint64_t first = TwoLayerPartitionJoinBatch(&r1, &s1, kind, sink);
  ASSERT_GT(first, 0u);

  // Copies made while counting is still off; the measured run must reuse
  // scratch capacity end to end — zero heap allocations per partition, and
  // in particular zero per-pair allocations.
  std::vector<ClassedKeyPointer> r2 = rp[0], s2 = sp[0];
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  const uint64_t second = TwoLayerPartitionJoinBatch(&r2, &s2, kind, sink);
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(second, first);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u)
      << "steady-state two-layer filter touched the heap";
}

}  // namespace
}  // namespace pbsm
