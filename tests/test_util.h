#ifndef PBSM_TESTS_TEST_UTIL_H_
#define PBSM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace pbsm {

/// Asserts that a Status-returning expression is OK.
#define PBSM_ASSERT_OK(expr)                                 \
  do {                                                       \
    const ::pbsm::Status _st = (expr);                       \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (false)

#define PBSM_EXPECT_OK(expr)                                 \
  do {                                                       \
    const ::pbsm::Status _st = (expr);                       \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                 \
  } while (false)

/// Unwraps a Result<T>, asserting success.
#define PBSM_ASSERT_OK_AND_ASSIGN(lhs, expr)                 \
  auto PBSM_CONCAT_TEST_(_res, __LINE__) = (expr);           \
  ASSERT_TRUE(PBSM_CONCAT_TEST_(_res, __LINE__).ok())        \
      << PBSM_CONCAT_TEST_(_res, __LINE__).status().ToString(); \
  lhs = std::move(PBSM_CONCAT_TEST_(_res, __LINE__)).value()

#define PBSM_CONCAT_TEST_(a, b) PBSM_CONCAT_TEST_IMPL_(a, b)
#define PBSM_CONCAT_TEST_IMPL_(a, b) a##b

/// Creates a unique scratch directory and a DiskManager + BufferPool over
/// it; removes everything on destruction.
class StorageEnv {
 public:
  explicit StorageEnv(size_t pool_bytes = 1 << 20,
                      DiskModel model = DiskModel(),
                      IoRetryPolicy retry = IoRetryPolicy()) {
    char tmpl[] = "/tmp/pbsm_test_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    dir_ = dir != nullptr ? dir : "/tmp/pbsm_test_fallback";
    disk_ = std::make_unique<DiskManager>(dir_, model);
    pool_ = std::make_unique<BufferPool>(disk_.get(), pool_bytes, retry);
  }
  ~StorageEnv() {
    pool_.reset();
    disk_.reset();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  DiskManager* disk() { return disk_.get(); }
  BufferPool* pool() { return pool_.get(); }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

}  // namespace pbsm

#endif  // PBSM_TESTS_TEST_UTIL_H_
