#include "core/window_select.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/index_build.h"
#include "datagen/loader.h"
#include "datagen/tiger_gen.h"
#include "geom/predicates.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

class WindowSelectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(512 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    tuples_ = gen.GenerateRoads(2000);
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation rel,
        LoadRelation(env_->pool(), nullptr, "road", tuples_));
    rel_ = std::make_unique<StoredRelation>(std::move(rel));
  }

  std::set<uint64_t> BruteForce(const Rect& window) {
    const Geometry window_polygon = Geometry::MakePolygon(
        {{{window.xlo, window.ylo},
          {window.xhi, window.ylo},
          {window.xhi, window.yhi},
          {window.xlo, window.yhi}}});
    std::set<uint64_t> out;
    size_t idx = 0;
    EXPECT_TRUE(rel_->heap
                    .Scan([&](Oid oid, const char*, size_t) -> Status {
                      if (Intersects(tuples_[idx].geometry, window_polygon)) {
                        out.insert(oid.Encode());
                      }
                      ++idx;
                      return Status::OK();
                    })
                    .ok());
    return out;
  }

  std::unique_ptr<StorageEnv> env_;
  std::vector<Tuple> tuples_;
  std::unique_ptr<StoredRelation> rel_;
};

TEST_F(WindowSelectTest, ScanAndIndexMatchBruteForce) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree index,
      BuildIndexByBulkLoad(env_->pool(), rel_->AsInput(), "ws.rtree", 0.75));

  JoinOptions opts;
  Rng rng(5);
  const Rect& u = rel_->info.universe;
  for (int q = 0; q < 25; ++q) {
    const double x = rng.UniformDouble(u.xlo, u.xhi);
    const double y = rng.UniformDouble(u.ylo, u.yhi);
    const Rect window(x, y, x + u.width() / 8, y + u.height() / 8);
    const std::set<uint64_t> expected = BruteForce(window);

    PBSM_ASSERT_OK_AND_ASSIGN(
        const SelectResult scan,
        WindowSelect(env_->pool(), rel_->AsInput(), window,
                     SelectAccessPath::kFullScan, opts));
    PBSM_ASSERT_OK_AND_ASSIGN(
        const SelectResult via_index,
        WindowSelect(env_->pool(), rel_->AsInput(), window,
                     SelectAccessPath::kIndex, opts, &index));

    auto to_set = [](const SelectResult& r) {
      std::set<uint64_t> s;
      for (const Oid& oid : r.oids) s.insert(oid.Encode());
      return s;
    };
    EXPECT_EQ(to_set(scan), expected) << "query " << q;
    EXPECT_EQ(to_set(via_index), expected) << "query " << q;
    EXPECT_GE(scan.candidates, expected.size());
    EXPECT_GE(via_index.candidates, expected.size());
  }
}

TEST_F(WindowSelectTest, IndexPathTouchesFewerPagesThanScan) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const RStarTree index,
      BuildIndexByBulkLoad(env_->pool(), rel_->AsInput(), "ws2.rtree",
                           0.75));
  JoinOptions opts;
  const Rect& u = rel_->info.universe;
  // A tiny window in a corner.
  const Rect window(u.xlo, u.ylo, u.xlo + u.width() / 50,
                    u.ylo + u.height() / 50);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const SelectResult scan,
      WindowSelect(env_->pool(), rel_->AsInput(), window,
                   SelectAccessPath::kFullScan, opts));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const SelectResult via_index,
      WindowSelect(env_->pool(), rel_->AsInput(), window,
                   SelectAccessPath::kIndex, opts, &index));
  // The scan tests every tuple; the index visits only overlapping subtrees.
  EXPECT_LT(via_index.candidates, scan.candidates + 1);
  EXPECT_LE(via_index.cost.cpu_seconds, scan.cost.cpu_seconds * 2 + 1.0);
}

TEST_F(WindowSelectTest, RejectsBadArguments) {
  JoinOptions opts;
  EXPECT_FALSE(WindowSelect(env_->pool(), rel_->AsInput(), Rect(),
                            SelectAccessPath::kFullScan, opts)
                   .ok());
  EXPECT_FALSE(WindowSelect(env_->pool(), rel_->AsInput(), Rect(0, 0, 1, 1),
                            SelectAccessPath::kIndex, opts, nullptr)
                   .ok());
}

TEST_F(WindowSelectTest, UniverseWindowSelectsEverything) {
  JoinOptions opts;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const SelectResult all,
      WindowSelect(env_->pool(), rel_->AsInput(), rel_->info.universe,
                   SelectAccessPath::kFullScan, opts));
  EXPECT_EQ(all.oids.size(), tuples_.size());
}

}  // namespace
}  // namespace pbsm
