#include "geom/wkt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/predicates.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

TEST(WktParseTest, Point) {
  PBSM_ASSERT_OK_AND_ASSIGN(const Geometry g, ParseWkt("POINT (3.5 -4.25)"));
  EXPECT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.rings()[0][0], (Point{3.5, -4.25}));
}

TEST(WktParseTest, LineString) {
  PBSM_ASSERT_OK_AND_ASSIGN(const Geometry g,
                            ParseWkt("LINESTRING (0 0, 1 2, 3.5 -1)"));
  EXPECT_EQ(g.type(), GeometryType::kPolyline);
  EXPECT_EQ(g.num_points(), 3u);
}

TEST(WktParseTest, PolygonWithHole) {
  PBSM_ASSERT_OK_AND_ASSIGN(
      const Geometry g,
      ParseWkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
               "(4 4, 6 4, 6 6, 4 6, 4 4))"));
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  EXPECT_EQ(g.num_holes(), 1u);
  // The repeated closing vertex is dropped.
  EXPECT_EQ(g.rings()[0].size(), 4u);
  EXPECT_TRUE(PointInPolygon({1, 1}, g));
  EXPECT_FALSE(PointInPolygon({5, 5}, g));
}

TEST(WktParseTest, CaseAndWhitespaceInsensitive) {
  EXPECT_TRUE(ParseWkt("point(1 2)").ok());
  EXPECT_TRUE(ParseWkt("  LineString ( 0 0 ,\t1 1 )  ").ok());
  EXPECT_TRUE(ParseWkt("Polygon((0 0, 1 0, 0 1))").ok());
}

TEST(WktParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWkt("").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2, 3 4)").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING (1 2)").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING (1 2, 3 4").ok());  // Unclosed.
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0))").ok());  // 2-vertex ring.
  EXPECT_FALSE(ParseWkt("POINT (a b)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2) trailing").ok());
}

class WktRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WktRoundTripTest, ToWktParsesBack) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    auto rand_pt = [&]() {
      return Point{rng.UniformDouble(-50, 50), rng.UniformDouble(-50, 50)};
    };
    Geometry g = Geometry::MakePoint(rand_pt());
    const int kind = static_cast<int>(rng.Uniform(3));
    if (kind == 1) {
      std::vector<Point> pts;
      for (int i = 0; i < 2 + static_cast<int>(rng.Uniform(10)); ++i) {
        pts.push_back(rand_pt());
      }
      g = Geometry::MakePolyline(std::move(pts));
    } else if (kind == 2) {
      std::vector<std::vector<Point>> rings;
      for (int r = 0; r < 1 + static_cast<int>(rng.Uniform(2)); ++r) {
        std::vector<Point> ring;
        for (int i = 0; i < 3 + static_cast<int>(rng.Uniform(8)); ++i) {
          ring.push_back(rand_pt());
        }
        rings.push_back(std::move(ring));
      }
      g = Geometry::MakePolygon(std::move(rings));
    }
    auto parsed = ParseWkt(g.ToWkt());
    ASSERT_TRUE(parsed.ok()) << g.ToWkt() << " -> "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed->type(), g.type());
    EXPECT_EQ(parsed->rings().size(), g.rings().size());
    // ToWkt prints with %f precision (6 digits); compare approximately.
    for (size_t r = 0; r < g.rings().size(); ++r) {
      ASSERT_EQ(parsed->rings()[r].size(), g.rings()[r].size());
      for (size_t i = 0; i < g.rings()[r].size(); ++i) {
        EXPECT_NEAR(parsed->rings()[r][i].x, g.rings()[r][i].x, 1e-5);
        EXPECT_NEAR(parsed->rings()[r][i].y, g.rings()[r][i].y, 1e-5);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WktRoundTripTest,
                         ::testing::Values(31, 41, 59));

}  // namespace
}  // namespace pbsm
