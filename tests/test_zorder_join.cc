#include "core/zorder_join.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/pbsm_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

class ZOrderJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));

    JoinOptions opts;
    opts.memory_budget_bytes = 1 << 20;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        PbsmJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                 SpatialPredicate::kIntersects, opts,
                 [&](Oid r, Oid s) {
                   expected_.emplace(r.Encode(), s.Encode());
                 }));
    (void)cost;
    ASSERT_GT(expected_.size(), 0u);
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
  PairSet expected_;
};

TEST_F(ZOrderJoinTest, MatchesPbsmAcrossResolutions) {
  for (const uint32_t level : {4u, 8u, 12u}) {
    for (const uint32_t cells : {1u, 4u, 16u}) {
      ZOrderJoinOptions opts;
      opts.max_level = level;
      opts.max_cells_per_object = cells;
      opts.join.memory_budget_bytes = 1 << 20;
      PairSet got;
      PBSM_ASSERT_OK_AND_ASSIGN(
          const JoinCostBreakdown cost,
          ZOrderJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                     SpatialPredicate::kIntersects, opts,
                     [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); }));
      EXPECT_EQ(got, expected_) << "level=" << level << " cells=" << cells;
      EXPECT_EQ(cost.results, expected_.size());
      // The z filter may over-approximate but never under-approximates.
      EXPECT_GE(cost.candidates, expected_.size());
    }
  }
}

TEST_F(ZOrderJoinTest, FinerGridsFilterBetterButCostMoreElements) {
  // Orenstein's [Ore89] tradeoff, which the paper's S2 recounts.
  uint64_t coarse_candidates = 0, fine_candidates = 0;
  uint64_t coarse_replication = 0, fine_replication = 0;
  for (const bool fine : {false, true}) {
    ZOrderJoinOptions opts;
    opts.max_level = fine ? 12 : 4;
    opts.max_cells_per_object = fine ? 16 : 1;
    opts.join.memory_budget_bytes = 1 << 20;
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        ZOrderJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                   SpatialPredicate::kIntersects, opts));
    if (fine) {
      fine_candidates = cost.candidates;
      fine_replication = cost.replicated;
    } else {
      coarse_candidates = cost.candidates;
      coarse_replication = cost.replicated;
    }
  }
  EXPECT_LT(fine_candidates, coarse_candidates);
  EXPECT_GT(fine_replication, coarse_replication);
}

TEST_F(ZOrderJoinTest, TinyBudgetSpillsAndStillMatches) {
  ZOrderJoinOptions opts;
  opts.max_level = 10;
  opts.max_cells_per_object = 8;
  opts.join.memory_budget_bytes = 16 << 10;
  PairSet got;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      ZOrderJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                 SpatialPredicate::kIntersects, opts,
                 [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); }));
  (void)cost;
  EXPECT_EQ(got, expected_);
}

TEST(ZOrderJoinValidationTest, RejectsBadLevels) {
  StorageEnv env(64 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env.pool(), nullptr, "r", gen.GenerateRoads(10)));
  ZOrderJoinOptions opts;
  opts.max_level = 0;
  EXPECT_FALSE(ZOrderJoin(env.pool(), rel.AsInput(), rel.AsInput(),
                          SpatialPredicate::kIntersects, opts)
                   .ok());
  opts.max_level = 40;
  EXPECT_FALSE(ZOrderJoin(env.pool(), rel.AsInput(), rel.AsInput(),
                          SpatialPredicate::kIntersects, opts)
                   .ok());
}

TEST(ZOrderJoinValidationTest, ContainmentPredicateWorks) {
  StorageEnv env(512 * kPageSize);
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation polys,
      LoadRelation(env.pool(), nullptr, "poly", gen.GeneratePolygons(150)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation islands,
      LoadRelation(env.pool(), nullptr, "island", gen.GenerateIslands(200)));
  JoinOptions jopts;
  jopts.memory_budget_bytes = 1 << 20;
  PairSet expected;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref,
      PbsmJoin(env.pool(), polys.AsInput(), islands.AsInput(),
               SpatialPredicate::kContains, jopts,
               [&](Oid r, Oid s) { expected.emplace(r.Encode(), s.Encode()); }));
  (void)ref;
  ZOrderJoinOptions opts;
  opts.join = jopts;
  PairSet got;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      ZOrderJoin(env.pool(), polys.AsInput(), islands.AsInput(),
                 SpatialPredicate::kContains, opts,
                 [&](Oid r, Oid s) { got.emplace(r.Encode(), s.Encode()); }));
  (void)cost;
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace pbsm
