#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/spatial_join.h"
#include "datagen/loader.h"
#include "datagen/sequoia_gen.h"
#include "datagen/tiger_gen.h"
#include "tests/test_util.h"

namespace pbsm {
namespace {

using PairSet = std::set<std::pair<uint64_t, uint64_t>>;

/// Runs the facade and unwraps the cost breakdown.
Result<JoinCostBreakdown> RunJoin(BufferPool* pool, const JoinInput& r,
                                  const JoinInput& s, const JoinSpec& spec) {
  PBSM_ASSIGN_OR_RETURN(JoinResult result, SpatialJoin(pool, r, s, spec));
  return std::move(result.breakdown);
}

ResultSink Collect(PairSet* out) {
  return [out](Oid r, Oid s) { out->emplace(r.Encode(), s.Encode()); };
}

JoinSpec ZOrderSpec(uint32_t max_level, uint32_t max_cells, PairSet* out) {
  JoinSpec spec;
  spec.method = JoinMethod::kZOrder;
  spec.zorder.max_level = max_level;
  spec.zorder.max_cells_per_object = max_cells;
  spec.options.memory_budget_bytes = 1 << 20;
  if (out != nullptr) spec.sink = Collect(out);
  return spec;
}

class ZOrderJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = std::make_unique<StorageEnv>(1024 * kPageSize);
    TigerGenerator gen(TigerGenerator::Params{});
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation roads,
        LoadRelation(env_->pool(), nullptr, "road", gen.GenerateRoads(1500)));
    PBSM_ASSERT_OK_AND_ASSIGN(
        StoredRelation hydro,
        LoadRelation(env_->pool(), nullptr, "hydro",
                     gen.GenerateHydrography(500)));
    roads_ = std::make_unique<StoredRelation>(std::move(roads));
    hydro_ = std::make_unique<StoredRelation>(std::move(hydro));

    JoinSpec spec;
    spec.options.memory_budget_bytes = 1 << 20;
    spec.sink = Collect(&expected_);
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(), spec));
    (void)cost;
    ASSERT_GT(expected_.size(), 0u);
  }

  std::unique_ptr<StorageEnv> env_;
  std::unique_ptr<StoredRelation> roads_, hydro_;
  PairSet expected_;
};

TEST_F(ZOrderJoinTest, MatchesPbsmAcrossResolutions) {
  for (const uint32_t level : {4u, 8u, 12u}) {
    for (const uint32_t cells : {1u, 4u, 16u}) {
      PairSet got;
      PBSM_ASSERT_OK_AND_ASSIGN(
          const JoinCostBreakdown cost,
          RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                  ZOrderSpec(level, cells, &got)));
      EXPECT_EQ(got, expected_) << "level=" << level << " cells=" << cells;
      EXPECT_EQ(cost.results, expected_.size());
      // The z filter may over-approximate but never under-approximates.
      EXPECT_GE(cost.candidates, expected_.size());
    }
  }
}

TEST_F(ZOrderJoinTest, FinerGridsFilterBetterButCostMoreElements) {
  // Orenstein's [Ore89] tradeoff, which the paper's S2 recounts.
  uint64_t coarse_candidates = 0, fine_candidates = 0;
  uint64_t coarse_replication = 0, fine_replication = 0;
  for (const bool fine : {false, true}) {
    PBSM_ASSERT_OK_AND_ASSIGN(
        const JoinCostBreakdown cost,
        RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(),
                ZOrderSpec(fine ? 12 : 4, fine ? 16 : 1, nullptr)));
    if (fine) {
      fine_candidates = cost.candidates;
      fine_replication = cost.replicated;
    } else {
      coarse_candidates = cost.candidates;
      coarse_replication = cost.replicated;
    }
  }
  EXPECT_LT(fine_candidates, coarse_candidates);
  EXPECT_GT(fine_replication, coarse_replication);
}

TEST_F(ZOrderJoinTest, TinyBudgetSpillsAndStillMatches) {
  PairSet got;
  JoinSpec spec = ZOrderSpec(10, 8, &got);
  spec.options.memory_budget_bytes = 16 << 10;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env_->pool(), roads_->AsInput(), hydro_->AsInput(), spec));
  (void)cost;
  EXPECT_EQ(got, expected_);
}

TEST(ZOrderJoinValidationTest, RejectsBadLevels) {
  StorageEnv env(64 * kPageSize);
  TigerGenerator gen(TigerGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation rel,
      LoadRelation(env.pool(), nullptr, "r", gen.GenerateRoads(10)));
  EXPECT_FALSE(RunJoin(env.pool(), rel.AsInput(), rel.AsInput(),
                       ZOrderSpec(0, 4, nullptr))
                   .ok());
  EXPECT_FALSE(RunJoin(env.pool(), rel.AsInput(), rel.AsInput(),
                       ZOrderSpec(40, 4, nullptr))
                   .ok());
}

TEST(ZOrderJoinValidationTest, ContainmentPredicateWorks) {
  StorageEnv env(512 * kPageSize);
  SequoiaGenerator gen(SequoiaGenerator::Params{});
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation polys,
      LoadRelation(env.pool(), nullptr, "poly", gen.GeneratePolygons(150)));
  PBSM_ASSERT_OK_AND_ASSIGN(
      const StoredRelation islands,
      LoadRelation(env.pool(), nullptr, "island", gen.GenerateIslands(200)));
  PairSet expected;
  JoinSpec ref_spec;
  ref_spec.predicate = SpatialPredicate::kContains;
  ref_spec.options.memory_budget_bytes = 1 << 20;
  ref_spec.sink = Collect(&expected);
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown ref,
      RunJoin(env.pool(), polys.AsInput(), islands.AsInput(), ref_spec));
  (void)ref;

  PairSet got;
  JoinSpec spec = ZOrderSpec(8, 4, &got);
  spec.predicate = SpatialPredicate::kContains;
  PBSM_ASSERT_OK_AND_ASSIGN(
      const JoinCostBreakdown cost,
      RunJoin(env.pool(), polys.AsInput(), islands.AsInput(), spec));
  (void)cost;
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace pbsm
